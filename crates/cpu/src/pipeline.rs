//! The out-of-order execution pipeline.
//!
//! A trace-driven model of the paper's 8-way dynamically scheduled
//! processor: fetch (gshare-directed, 2 predictions/cycle, I-cache
//! modeled) → dispatch (rename into a 128-entry ROB with a 64-entry
//! load/store queue) → issue (dataflow order under functional-unit and
//! memory-ordering constraints) → writeback → commit.
//!
//! The pipeline replays the *correct-path* dynamic instruction stream
//! produced by a workload generator. Branch mispredictions stall the
//! front end until the branch resolves (minimum 8-cycle penalty), rather
//! than executing a wrong path — see DESIGN.md §4 for why this
//! substitution is sound for the paper's experiments.

use crate::bpred::{BpredStats, BranchPredictor};
use crate::config::{CpuConfig, Disambiguation};
use crate::fu::FuPool;
use crate::inst::{DynInst, Op, Reg};
use crate::mem_iface::MemSystem;
use psb_common::stats::RunningMean;
use psb_common::Cycle;
use std::collections::VecDeque;

/// Results of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct CpuStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Loads satisfied by store-to-load forwarding (these never reach the
    /// cache, and per the paper never train the address predictor).
    pub forwarded_loads: u64,
    /// Issue-to-completion latency of every committed load.
    pub load_latency: RunningMean,
    /// Branch-predictor accuracy counters.
    pub bpred: BpredStats,
}

impl CpuStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed instructions that were loads.
    pub fn load_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.loads as f64 / self.committed as f64
        }
    }

    /// Fraction of committed instructions that were stores.
    pub fn store_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.stores as f64 / self.committed as f64
        }
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EntryState {
    /// In the ROB, waiting for operands / resources.
    Dispatched,
    /// Executing; result available at `finish`.
    Executing { finish: Cycle },
    /// Complete; result was available at `finish`.
    Done { finish: Cycle },
}

#[derive(Clone, Debug)]
struct RobEntry {
    inst: DynInst,
    state: EntryState,
    /// Producer sequence numbers for the register sources.
    deps: [Option<u64>; 2],
    mispredicted: bool,
    issued_at: Cycle,
    forwarded: bool,
}

/// What gates a load's issue this cycle.
enum LoadGate {
    /// An ordering constraint is unresolved; retry later.
    Wait,
    /// Forward from an in-window store.
    Forward,
    /// Access the cache hierarchy.
    Cache,
}

/// The out-of-order pipeline.
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_cpu::{CpuConfig, DynInst, FixedLatencyMemory, Pipeline, Reg};
///
/// // Two independent ALU ops issue together on the 8-wide core.
/// let trace = vec![
///     DynInst::alu(Addr::new(0x1000), Reg::new(1), None, None),
///     DynInst::alu(Addr::new(0x1004), Reg::new(2), None, None),
/// ];
/// let mut mem = FixedLatencyMemory::new(1);
/// let stats = Pipeline::new(CpuConfig::baseline()).run(trace, &mut mem, u64::MAX);
/// assert_eq!(stats.committed, 2);
/// ```
pub struct Pipeline {
    config: CpuConfig,
    bpred: BranchPredictor,
    fu: FuPool,
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    next_seq: u64,
    fetch_queue: VecDeque<(DynInst, bool)>,
    lsq_count: usize,
    last_writer: [Option<u64>; Reg::COUNT],
    // Fetch state.
    fetch_halted: bool,
    halt_cycle: Cycle,
    resume_at: Option<Cycle>,
    ifetch_ready: Cycle,
    last_fetch_block: Option<u64>,
    trace_done: bool,
    now: Cycle,
    stats: CpuStats,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: CpuConfig) -> Self {
        Pipeline {
            config,
            bpred: BranchPredictor::new(config.bpred),
            fu: FuPool::paper_baseline(),
            rob: VecDeque::with_capacity(config.rob_size),
            head_seq: 0,
            next_seq: 0,
            fetch_queue: VecDeque::with_capacity(config.fetch_queue_size),
            lsq_count: 0,
            last_writer: [None; Reg::COUNT],
            fetch_halted: false,
            halt_cycle: Cycle::ZERO,
            resume_at: None,
            ifetch_ready: Cycle::ZERO,
            last_fetch_block: None,
            trace_done: false,
            now: Cycle::ZERO,
            stats: CpuStats::default(),
        }
    }

    /// Runs the pipeline over `trace` against `mem` until the trace is
    /// drained or `max_commits` instructions have committed. Returns the
    /// accumulated statistics.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (no commit for 1,000,000 cycles) —
    /// this indicates a bug in a trace generator or memory model, never a
    /// legal simulation outcome.
    pub fn run<I, M>(mut self, trace: I, mem: &mut M, max_commits: u64) -> CpuStats
    where
        I: IntoIterator<Item = DynInst>,
        M: MemSystem,
    {
        let mut trace = trace.into_iter().peekable();
        let mut last_commit_cycle = Cycle::ZERO;

        loop {
            let committed_before = self.stats.committed;
            self.commit(mem);
            self.writeback();
            self.issue(mem);
            self.dispatch();
            self.fetch(&mut trace, mem);
            mem.tick(self.now);
            mem.sample(self.now, self.stats.committed);

            if self.stats.committed > committed_before {
                last_commit_cycle = self.now;
            }

            let drained = self.trace_done && self.rob.is_empty() && self.fetch_queue.is_empty();
            if drained || self.stats.committed >= max_commits {
                break;
            }

            assert!(
                self.now.since(last_commit_cycle) < 1_000_000,
                "pipeline deadlock at {:?}: rob={}, fq={}, head={:?}",
                self.now,
                self.rob.len(),
                self.fetch_queue.len(),
                self.rob.front().map(|e| (e.inst, e.state)),
            );
            self.now += 1;
        }

        self.stats.cycles = self.now.raw() + 1;
        self.stats.bpred = self.bpred.stats();
        self.stats
    }

    fn entry(&self, seq: u64) -> Option<&RobEntry> {
        seq.checked_sub(self.head_seq).and_then(|i| self.rob.get(i as usize))
    }

    /// True if the value produced by `seq` is available at `now`.
    /// Committed producers are always ready.
    fn value_ready(&self, seq: u64) -> bool {
        match self.entry(seq) {
            None => true,
            Some(e) => matches!(e.state, EntryState::Done { finish } if finish <= self.now),
        }
    }

    fn deps_ready(&self, idx: usize) -> bool {
        self.rob[idx].deps.iter().flatten().all(|&seq| self.value_ready(seq))
    }

    /// Decides whether the load at ROB index `idx` may issue, and how.
    fn load_gate(&self, idx: usize) -> LoadGate {
        let load_addr =
            self.rob[idx].inst.mem_addr.expect("invariant: mem ops always carry an address");
        let load_size = self.rob[idx].inst.mem_size as u64;
        let overlap = |e: &RobEntry| {
            let sa = e.inst.mem_addr.expect("invariant: mem ops always carry an address");
            let ss = e.inst.mem_size as u64;
            sa.raw() < load_addr.raw() + load_size && load_addr.raw() < sa.raw() + ss
        };

        match self.config.disambiguation {
            Disambiguation::Perfect => {
                // Youngest older store to the same memory, if any.
                for e in self.rob.iter().take(idx).rev() {
                    if e.inst.op.is_store() && overlap(e) {
                        return match e.state {
                            EntryState::Done { finish } if finish <= self.now => LoadGate::Forward,
                            _ => LoadGate::Wait,
                        };
                    }
                }
                LoadGate::Cache
            }
            Disambiguation::WaitForStores => {
                let mut forward_candidate = None;
                for e in self.rob.iter().take(idx) {
                    if !e.inst.op.is_store() {
                        continue;
                    }
                    if matches!(e.state, EntryState::Dispatched) {
                        return LoadGate::Wait;
                    }
                    if overlap(e) {
                        forward_candidate = Some(e.state);
                    }
                }
                match forward_candidate {
                    Some(EntryState::Done { finish }) if finish <= self.now => LoadGate::Forward,
                    Some(_) => LoadGate::Wait,
                    None => LoadGate::Cache,
                }
            }
        }
    }

    fn commit<M: MemSystem>(&mut self, mem: &mut M) {
        let mut committed = 0;
        while committed < self.config.commit_width {
            let Some(head) = self.rob.front() else { break };
            let EntryState::Done { finish } = head.state else {
                break;
            };
            if finish > self.now {
                break;
            }
            let e = self.rob.pop_front().expect("invariant: the loop guard saw a front element");
            self.head_seq += 1;
            committed += 1;
            self.stats.committed += 1;
            match e.inst.op {
                Op::Load => {
                    self.stats.loads += 1;
                    self.stats.load_latency.add(finish.since(e.issued_at));
                    if e.forwarded {
                        self.stats.forwarded_loads += 1;
                    }
                    self.lsq_count -= 1;
                }
                Op::Store => {
                    self.stats.stores += 1;
                    self.lsq_count -= 1;
                    let addr = e.inst.mem_addr.expect("invariant: mem ops always carry an address");
                    mem.store(self.now, e.inst.pc, addr);
                }
                Op::Branch => self.stats.branches += 1,
                _ => {}
            }
        }
    }

    fn writeback(&mut self) {
        let now = self.now;
        let mut resolved_mispredict = None;
        for e in &mut self.rob {
            if let EntryState::Executing { finish } = e.state {
                if finish <= now {
                    e.state = EntryState::Done { finish };
                    if e.mispredicted {
                        resolved_mispredict = Some(finish);
                    }
                }
            }
        }
        if let Some(finish) = resolved_mispredict {
            debug_assert!(self.fetch_halted);
            let earliest = self.halt_cycle + self.config.min_mispredict_penalty;
            let redirect = finish.max(now) + self.config.redirect_latency;
            self.resume_at = Some(earliest.max(redirect));
        }
    }

    fn issue<M: MemSystem>(&mut self, mem: &mut M) {
        let mut issued = 0;
        let mut idx = 0;
        while idx < self.rob.len() && issued < self.config.issue_width {
            if self.rob[idx].state != EntryState::Dispatched || !self.deps_ready(idx) {
                idx += 1;
                continue;
            }
            let inst = self.rob[idx].inst;
            let finish = match inst.op {
                Op::Load => match self.load_gate(idx) {
                    LoadGate::Wait => {
                        idx += 1;
                        continue;
                    }
                    LoadGate::Forward => match self.fu.try_issue(Op::Load, self.now) {
                        Some(_) => {
                            self.rob[idx].forwarded = true;
                            self.now + self.config.store_forward_latency
                        }
                        None => {
                            idx += 1;
                            continue;
                        }
                    },
                    LoadGate::Cache => match self.fu.try_issue(Op::Load, self.now) {
                        Some(_) => {
                            let addr =
                                inst.mem_addr.expect("invariant: mem ops always carry an address");
                            mem.load(self.now, inst.pc, addr)
                        }
                        None => {
                            idx += 1;
                            continue;
                        }
                    },
                },
                op => match self.fu.try_issue(op, self.now) {
                    Some(finish) => finish,
                    None => {
                        idx += 1;
                        continue;
                    }
                },
            };
            self.rob[idx].state = EntryState::Executing { finish };
            self.rob[idx].issued_at = self.now;
            issued += 1;
            idx += 1;
        }
    }

    fn dispatch(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.config.dispatch_width {
            let Some(&(inst, _)) = self.fetch_queue.front() else {
                break;
            };
            if self.rob.len() >= self.config.rob_size {
                break;
            }
            if inst.op.is_mem() && self.lsq_count >= self.config.lsq_size {
                break;
            }
            let (inst, mispredicted) = self
                .fetch_queue
                .pop_front()
                .expect("invariant: the loop guard saw a front element");
            let seq = self.next_seq;
            self.next_seq += 1;
            let dep_of = |r: Option<Reg>| r.and_then(|r| self.last_writer[r.index()]);
            let deps = [dep_of(inst.src1), dep_of(inst.src2)];
            if let Some(dst) = inst.dst {
                self.last_writer[dst.index()] = Some(seq);
            }
            if inst.op.is_mem() {
                self.lsq_count += 1;
            }
            self.rob.push_back(RobEntry {
                inst,
                state: EntryState::Dispatched,
                deps,
                mispredicted,
                issued_at: Cycle::ZERO,
                forwarded: false,
            });
            dispatched += 1;
        }
    }

    fn fetch<I, M>(&mut self, trace: &mut std::iter::Peekable<I>, mem: &mut M)
    where
        I: Iterator<Item = DynInst>,
        M: MemSystem,
    {
        if self.fetch_halted {
            match self.resume_at {
                Some(at) if self.now >= at => {
                    self.fetch_halted = false;
                    self.resume_at = None;
                    self.last_fetch_block = None;
                }
                _ => return,
            }
        }
        if self.now < self.ifetch_ready {
            return;
        }

        let mut fetched = 0;
        let mut branches = 0;
        while fetched < self.config.fetch_width
            && self.fetch_queue.len() < self.config.fetch_queue_size
        {
            let Some(peeked) = trace.peek() else {
                self.trace_done = true;
                break;
            };
            if peeked.op == Op::Branch && branches >= self.config.branches_per_fetch {
                break;
            }
            // New I-cache block: model the instruction fetch.
            let block = peeked.pc.raw() / self.config.icache_block;
            if self.last_fetch_block != Some(block) {
                let ready = mem.ifetch(self.now, peeked.pc);
                if ready > self.now {
                    self.ifetch_ready = ready;
                    break;
                }
                self.last_fetch_block = Some(block);
            }

            let inst = trace.next().expect("invariant: peek just returned Some");
            fetched += 1;
            if inst.op.is_load() {
                mem.fetched_load(self.now, inst.pc);
            }
            let mut mispredicted = false;
            let mut ends_group = false;
            if let Some(info) = inst.branch {
                branches += 1;
                let p = self.bpred.predict_and_train(inst.pc, info);
                mispredicted = !p.correct;
                ends_group = info.taken || mispredicted;
            }
            self.fetch_queue.push_back((inst, mispredicted));
            if mispredicted {
                self.fetch_halted = true;
                self.halt_cycle = self.now;
                self.resume_at = None;
                break;
            }
            if ends_group {
                // Taken branch: the target is fetched next cycle.
                self.last_fetch_block = None;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BranchInfo, BranchKind};
    use crate::mem_iface::FixedLatencyMemory;
    use psb_common::Addr;

    fn run_trace(trace: Vec<DynInst>, load_latency: u64) -> CpuStats {
        let mut mem = FixedLatencyMemory::new(load_latency);
        Pipeline::new(CpuConfig::baseline()).run(trace, &mut mem, u64::MAX)
    }

    /// A straight-line run of independent ALU ops at the given pc base.
    fn alu_run(base: u64, n: usize) -> Vec<DynInst> {
        (0..n)
            .map(|i| {
                DynInst::alu(Addr::new(base + 4 * i as u64), Reg::new((i % 32) as u8), None, None)
            })
            .collect()
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let stats = run_trace(alu_run(0x1000, 4096), 1);
        assert_eq!(stats.committed, 4096);
        // 8-wide machine, no hazards: expect IPC well above 4.
        assert!(stats.ipc() > 4.0, "ipc = {}", stats.ipc());
    }

    #[test]
    fn dependent_chain_is_serialized() {
        // r1 <- r1 chain: one instruction per cycle at best.
        let trace: Vec<DynInst> = (0..1000)
            .map(|i| DynInst::alu(Addr::new(0x1000 + 4 * i), Reg::new(1), Some(Reg::new(1)), None))
            .collect();
        let stats = run_trace(trace, 1);
        assert_eq!(stats.committed, 1000);
        assert!(stats.ipc() <= 1.1, "dependent chain must serialize, ipc = {}", stats.ipc());
        assert!(stats.cycles >= 1000);
    }

    #[test]
    fn load_latency_gates_dependents() {
        // load r1; use r1 -> load r1; ... with 50-cycle loads.
        let mut trace = Vec::new();
        for i in 0..200u64 {
            trace.push(DynInst::load(
                Addr::new(0x1000 + 8 * i),
                Reg::new(1),
                Some(Reg::new(1)),
                Addr::new(0x10_0000 + 64 * i),
                8,
            ));
            trace.push(DynInst::alu(
                Addr::new(0x1000 + 8 * i + 4),
                Reg::new(1),
                Some(Reg::new(1)),
                None,
            ));
        }
        let stats = run_trace(trace, 50);
        assert_eq!(stats.committed, 400);
        // Each iteration costs >= 51 cycles (load 50 + alu 1).
        assert!(stats.cycles >= 200 * 51, "cycles = {}", stats.cycles);
        assert!(stats.load_latency.mean() >= 50.0);
    }

    #[test]
    fn independent_loads_overlap() {
        // 200 independent loads, 50-cycle latency, 4 ld/st units: the
        // machine should overlap them heavily.
        let trace: Vec<DynInst> = (0..200u64)
            .map(|i| {
                DynInst::load(
                    Addr::new(0x1000 + 4 * i),
                    Reg::new((i % 32) as u8),
                    None,
                    Addr::new(0x10_0000 + 64 * i),
                    8,
                )
            })
            .collect();
        let stats = run_trace(trace, 50);
        assert_eq!(stats.loads, 200);
        // Far better than serialized (200 * 50 = 10000 cycles).
        assert!(stats.cycles < 2000, "cycles = {}", stats.cycles);
    }

    #[test]
    fn store_forwarding_shortcuts_memory() {
        // store to X; load from X: load must forward, not pay memory.
        let mut trace = Vec::new();
        for i in 0..100u64 {
            let x = Addr::new(0x20_0000 + 8 * i);
            trace.push(DynInst::store(Addr::new(0x1000 + 8 * i), None, None, x, 8));
            trace.push(DynInst::load(Addr::new(0x1000 + 8 * i + 4), Reg::new(2), None, x, 8));
        }
        let mut mem = FixedLatencyMemory::new(200);
        let stats = Pipeline::new(CpuConfig::baseline()).run(trace, &mut mem, u64::MAX);
        assert_eq!(stats.forwarded_loads, 100);
        assert_eq!(mem.loads(), 0, "forwarded loads must not touch memory");
        assert!(stats.cycles < 2000, "forwarding must avoid the 200-cycle latency");
    }

    #[test]
    fn wait_for_stores_is_slower_than_perfect() {
        // Loads independent of many unrelated stores.
        let mut trace = Vec::new();
        for i in 0..300u64 {
            trace.push(DynInst::store(
                Addr::new(0x1000 + 12 * i),
                None,
                Some(Reg::new(3)),
                Addr::new(0x30_0000 + 8 * i),
                8,
            ));
            trace.push(DynInst::load(
                Addr::new(0x1000 + 12 * i + 4),
                Reg::new(1),
                None,
                Addr::new(0x40_0000 + 64 * i),
                8,
            ));
            trace.push(DynInst::alu(
                Addr::new(0x1000 + 12 * i + 8),
                Reg::new(3),
                Some(Reg::new(1)),
                None,
            ));
        }
        let mut mem1 = FixedLatencyMemory::new(30);
        let perfect = Pipeline::new(CpuConfig::baseline()).run(trace.clone(), &mut mem1, u64::MAX);
        let mut mem2 = FixedLatencyMemory::new(30);
        let nodis =
            Pipeline::new(CpuConfig::baseline().with_disambiguation(Disambiguation::WaitForStores))
                .run(trace, &mut mem2, u64::MAX);
        assert!(
            nodis.cycles >= perfect.cycles,
            "NoDis {} must not beat perfect {}",
            nodis.cycles,
            perfect.cycles
        );
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // A loop whose conditional branch at a fixed PC either always
        // falls through (learnable) or flips pseudo-randomly (hopeless).
        // Correct-path layout per iteration:
        //   0x1000 alu
        //   0x1004 cond branch -> 0x100c (taken skips 0x1008)
        //   0x1008 alu                  (not-taken path only)
        //   0x100c jump -> 0x1000
        let mk = |pattern: fn(u64) -> bool| -> Vec<DynInst> {
            let mut v = Vec::new();
            for i in 0..2000u64 {
                let taken = pattern(i);
                v.push(DynInst::alu(Addr::new(0x1000), Reg::new(1), None, None));
                v.push(DynInst::branch(
                    Addr::new(0x1004),
                    None,
                    BranchInfo { kind: BranchKind::Conditional, taken, target: Addr::new(0x100c) },
                ));
                if !taken {
                    v.push(DynInst::alu(Addr::new(0x1008), Reg::new(2), None, None));
                }
                v.push(DynInst::branch(
                    Addr::new(0x100c),
                    None,
                    BranchInfo { kind: BranchKind::Jump, taken: true, target: Addr::new(0x1000) },
                ));
            }
            v
        };
        let easy = run_trace(mk(|_| false), 1);
        // Full-avalanche hash of the iteration index: effectively random.
        // (A plain multiply's top bit is a Sturmian sequence that gshare
        // happily learns.)
        let hard = run_trace(
            mk(|i| {
                let mut z = i.wrapping_add(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) & 1 != 0
            }),
            1,
        );
        assert!(
            hard.cycles as f64 > easy.cycles as f64 * 1.5,
            "mispredictions must hurt: easy {} vs hard {}",
            easy.cycles,
            hard.cycles
        );
        assert!(hard.bpred.mispredictions > 500, "hard: {:?}", hard.bpred);
        assert!(easy.bpred.mispredictions < 50, "easy: {:?}", easy.bpred);
        assert!(easy.bpred.accuracy() > 0.97);
    }

    #[test]
    fn rob_capacity_limits_outstanding_work() {
        // A single very long load followed by many ALUs: the ROB fills and
        // dispatch stalls until the load completes.
        let mut trace =
            vec![DynInst::load(Addr::new(0x1000), Reg::new(1), None, Addr::new(0x10_0000), 8)];
        trace.extend(alu_run(0x1004, 400));
        let stats = run_trace(trace, 500);
        // The load blocks commit; the 128-entry ROB can absorb only so
        // much, so total time is dominated by the load latency.
        assert!(stats.cycles >= 500, "cycles = {}", stats.cycles);
        assert_eq!(stats.committed, 401);
    }

    #[test]
    fn stats_fractions() {
        let mut trace = alu_run(0x1000, 10);
        trace.push(DynInst::load(Addr::new(0x1028), Reg::new(1), None, Addr::new(0x9000), 8));
        trace.push(DynInst::store(Addr::new(0x102c), None, None, Addr::new(0x9008), 8));
        let stats = run_trace(trace, 1);
        assert_eq!(stats.committed, 12);
        assert!((stats.load_fraction() - 1.0 / 12.0).abs() < 1e-12);
        assert!((stats.store_fraction() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn max_commits_stops_early() {
        let stats = run_trace_limited(alu_run(0x1000, 1000), 100);
        assert!(stats.committed >= 100 && stats.committed < 1000);
    }

    fn run_trace_limited(trace: Vec<DynInst>, max: u64) -> CpuStats {
        let mut mem = FixedLatencyMemory::new(1);
        Pipeline::new(CpuConfig::baseline()).run(trace, &mut mem, max)
    }

    #[test]
    fn empty_trace_is_fine() {
        let stats = run_trace(Vec::new(), 1);
        assert_eq!(stats.committed, 0);
        assert!(stats.ipc() == 0.0 || stats.cycles <= 1);
    }
}
