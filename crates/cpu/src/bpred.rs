//! Branch prediction: gshare + BTB + return address stack.
//!
//! The paper "use[s] a McFarling gshare predictor to drive our fetch unit.
//! Two predictions can be made per cycle with up to 8 instructions
//! fetched." This module implements the predictor; the per-cycle limits
//! live in the fetch stage.
//!
//! Because the pipeline replays a correct-path trace (no wrong-path
//! execution), the predictor is trained at fetch time with the actual
//! outcome. This keeps global history consistent without modeling
//! checkpoint/repair, a standard trace-driven simplification that affects
//! all configurations identically (see DESIGN.md §4).

use crate::inst::{BranchInfo, BranchKind};
use psb_common::{Addr, SatCounter};

/// Configuration for [`BranchPredictor`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BpredConfig {
    /// log2 of the gshare pattern-history-table size.
    pub gshare_bits: u32,
    /// Number of BTB entries (direct-mapped, tagged).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

impl Default for BpredConfig {
    fn default() -> Self {
        BpredConfig { gshare_bits: 12, btb_entries: 2048, ras_depth: 8 }
    }
}

/// What the front end does with a fetched branch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target, if the structure produced one.
    pub target: Option<Addr>,
    /// True if direction and (when taken) target both match the actual
    /// outcome — i.e. fetch may continue down the right path.
    pub correct: bool,
}

/// Aggregate accuracy counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Branches predicted.
    pub predictions: u64,
    /// Mispredictions (direction or target).
    pub mispredictions: u64,
}

impl BpredStats {
    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct BtbEntry {
    tag: u64,
    target: Addr,
    valid: bool,
}

/// A gshare direction predictor with a direct-mapped BTB and an RAS.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    pht: Vec<SatCounter>,
    history: u64,
    history_mask: u64,
    btb: Vec<BtbEntry>,
    ras: Vec<Addr>,
    ras_depth: usize,
    stats: BpredStats,
}

impl BranchPredictor {
    /// Creates a predictor from a configuration.
    pub fn new(config: BpredConfig) -> Self {
        let pht_size = 1usize << config.gshare_bits;
        BranchPredictor {
            pht: vec![SatCounter::with_value(3, 2); pht_size],
            history: 0,
            history_mask: (pht_size - 1) as u64,
            btb: vec![BtbEntry { tag: 0, target: Addr::new(0), valid: false }; config.btb_entries],
            ras: Vec::with_capacity(config.ras_depth),
            ras_depth: config.ras_depth,
            stats: BpredStats::default(),
        }
    }

    fn pht_index(&self, pc: Addr) -> usize {
        (((pc.raw() >> 2) ^ self.history) & self.history_mask) as usize
    }

    fn btb_index(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) as usize) % self.btb.len()
    }

    /// Predicts the branch at `pc` with actual outcome `actual`, trains
    /// the structures, and reports whether fetch stays on the correct
    /// path.
    pub fn predict_and_train(&mut self, pc: Addr, actual: BranchInfo) -> Prediction {
        self.stats.predictions += 1;

        let (pred_taken, pred_target) = match actual.kind {
            BranchKind::Conditional => {
                let idx = self.pht_index(pc);
                let taken = self.pht[idx].is_high();
                let target = taken.then(|| self.btb_lookup(pc)).flatten();
                (taken, target)
            }
            BranchKind::Jump | BranchKind::Call => {
                // Direct targets are decoded in the fetch stage; model as
                // always-taken with a BTB-or-decode target (always right).
                (true, Some(actual.target))
            }
            BranchKind::Return => (true, self.ras.last().copied()),
            BranchKind::Indirect => (true, self.btb_lookup(pc)),
        };

        // A prediction is correct when the direction matches and, if the
        // branch is taken, the target is known and matches.
        let correct =
            pred_taken == actual.taken && (!actual.taken || pred_target == Some(actual.target));

        // --- train ---
        if actual.kind == BranchKind::Conditional {
            let idx = self.pht_index(pc);
            if actual.taken {
                self.pht[idx].inc();
            } else {
                self.pht[idx].dec();
            }
            self.history = ((self.history << 1) | actual.taken as u64) & self.history_mask;
        }
        if actual.taken {
            let idx = self.btb_index(pc);
            self.btb[idx] = BtbEntry { tag: pc.raw(), target: actual.target, valid: true };
        }
        match actual.kind {
            BranchKind::Call => {
                if self.ras.len() == self.ras_depth {
                    self.ras.remove(0);
                }
                self.ras.push(pc.offset(4));
            }
            BranchKind::Return => {
                self.ras.pop();
            }
            _ => {}
        }

        if !correct {
            self.stats.mispredictions += 1;
        }
        Prediction { taken: pred_taken, target: pred_target, correct }
    }

    fn btb_lookup(&self, pc: Addr) -> Option<Addr> {
        let e = &self.btb[self.btb_index(pc)];
        (e.valid && e.tag == pc.raw()).then_some(e.target)
    }

    /// Accuracy counters.
    pub fn stats(&self) -> BpredStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(taken: bool) -> BranchInfo {
        BranchInfo { kind: BranchKind::Conditional, taken, target: Addr::new(0x4000) }
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut bp = BranchPredictor::new(BpredConfig::default());
        let pc = Addr::new(0x100);
        // Warm up: counters start weakly-taken but the BTB is cold, so the
        // first taken prediction lacks a target.
        bp.predict_and_train(pc, cond(true));
        let mut correct = 0;
        for _ in 0..100 {
            if bp.predict_and_train(pc, cond(true)).correct {
                correct += 1;
            }
        }
        assert!(correct >= 99, "only {correct}/100 correct");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = BranchPredictor::new(BpredConfig::default());
        let pc = Addr::new(0x200);
        let mut outcome = false;
        // Train through the warmup, then measure.
        for _ in 0..64 {
            bp.predict_and_train(pc, cond(outcome));
            outcome = !outcome;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if bp.predict_and_train(pc, cond(outcome)).correct {
                correct += 1;
            }
            outcome = !outcome;
        }
        assert!(correct >= 95, "gshare should capture T/NT alternation, got {correct}");
    }

    #[test]
    fn returns_use_ras() {
        let mut bp = BranchPredictor::new(BpredConfig::default());
        let call_pc = Addr::new(0x100);
        let ret_pc = Addr::new(0x900);
        bp.predict_and_train(
            call_pc,
            BranchInfo { kind: BranchKind::Call, taken: true, target: Addr::new(0x800) },
        );
        let p = bp.predict_and_train(
            ret_pc,
            BranchInfo { kind: BranchKind::Return, taken: true, target: call_pc.offset(4) },
        );
        assert!(p.correct, "RAS must predict the pushed return address");
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut bp = BranchPredictor::new(BpredConfig { ras_depth: 2, ..Default::default() });
        for i in 0..3u64 {
            bp.predict_and_train(
                Addr::new(0x100 + 16 * i),
                BranchInfo { kind: BranchKind::Call, taken: true, target: Addr::new(0x800) },
            );
        }
        // Pop back: innermost two are fine...
        for i in (1..3u64).rev() {
            let p = bp.predict_and_train(
                Addr::new(0x900),
                BranchInfo {
                    kind: BranchKind::Return,
                    taken: true,
                    target: Addr::new(0x100 + 16 * i + 4),
                },
            );
            assert!(p.correct, "return {i}");
        }
        // ...the third was dropped by the overflow.
        let p = bp.predict_and_train(
            Addr::new(0x900),
            BranchInfo { kind: BranchKind::Return, taken: true, target: Addr::new(0x104) },
        );
        assert!(!p.correct);
    }

    #[test]
    fn indirect_needs_btb_warmup() {
        let mut bp = BranchPredictor::new(BpredConfig::default());
        let pc = Addr::new(0x300);
        let b = BranchInfo { kind: BranchKind::Indirect, taken: true, target: Addr::new(0x7000) };
        assert!(!bp.predict_and_train(pc, b).correct, "cold BTB must miss");
        assert!(bp.predict_and_train(pc, b).correct, "trained BTB must hit");
        // Target change forces a mispredict once.
        let b2 = BranchInfo { kind: BranchKind::Indirect, taken: true, target: Addr::new(0x9000) };
        assert!(!bp.predict_and_train(pc, b2).correct);
        assert!(bp.predict_and_train(pc, b2).correct);
    }

    #[test]
    fn direct_jumps_always_correct() {
        let mut bp = BranchPredictor::new(BpredConfig::default());
        let b = BranchInfo { kind: BranchKind::Jump, taken: true, target: Addr::new(0x5000) };
        assert!(bp.predict_and_train(Addr::new(0x400), b).correct);
    }

    #[test]
    fn stats_accumulate() {
        let mut bp = BranchPredictor::new(BpredConfig::default());
        let pc = Addr::new(0x500);
        for _ in 0..10 {
            bp.predict_and_train(pc, cond(true));
        }
        let s = bp.stats();
        assert_eq!(s.predictions, 10);
        assert!(s.accuracy() > 0.5);
    }
}
