//! The pipeline's view of the memory system.

use psb_common::{Addr, Cycle};

/// The memory system as seen by the pipeline.
///
/// The CPU model is memory-system agnostic: the full simulator implements
/// this trait with L1 caches, stream buffers and the lower memory system;
/// unit tests use [`FixedLatencyMemory`].
pub trait MemSystem {
    /// A demand load by the instruction at `pc` to `addr`, issued at
    /// `now`. Returns the cycle the data is available to dependents.
    fn load(&mut self, now: Cycle, pc: Addr, addr: Addr) -> Cycle;

    /// A committed store by the instruction at `pc` to `addr`. Stores
    /// update cache state and consume bandwidth but nothing waits on them.
    fn store(&mut self, now: Cycle, pc: Addr, addr: Addr);

    /// An instruction fetch touching the block containing `pc`. Returns
    /// the cycle the block is available (equal to `now` on an L1I hit).
    fn ifetch(&mut self, now: Cycle, pc: Addr) -> Cycle;

    /// Notification that a *load* instruction at `pc` entered the fetch
    /// stage. Fetch-stream prefetchers (Section 3.1 of the paper: Chen &
    /// Baer's lookahead-PC family) use this early sighting to predict and
    /// prefetch the load's address long before it issues. Default: no-op.
    fn fetched_load(&mut self, now: Cycle, pc: Addr) {
        let _ = (now, pc);
    }

    /// Per-cycle housekeeping, called once per simulated cycle after the
    /// pipeline stages. The full simulator uses this to run the prefetch
    /// engines.
    fn tick(&mut self, now: Cycle) {
        let _ = now;
    }

    /// Observability sampling point, called once per simulated cycle
    /// right after [`MemSystem::tick`] with the committed-instruction
    /// count (which only the pipeline knows). The full simulator uses
    /// this to drive interval time series; the default no-op compiles
    /// away under static dispatch.
    fn sample(&mut self, now: Cycle, committed: u64) {
        let _ = (now, committed);
    }
}

/// A memory system with a fixed load latency and instant fetches — the
/// null substrate for pipeline unit tests.
///
/// # Example
///
/// ```
/// use psb_common::{Addr, Cycle};
/// use psb_cpu::{FixedLatencyMemory, MemSystem};
///
/// let mut mem = FixedLatencyMemory::new(3);
/// assert_eq!(mem.load(Cycle::new(10), Addr::new(0), Addr::new(0x100)), Cycle::new(13));
/// ```
#[derive(Clone, Debug)]
pub struct FixedLatencyMemory {
    load_latency: u64,
    loads: u64,
    stores: u64,
}

impl FixedLatencyMemory {
    /// Creates a memory with the given load latency in cycles.
    pub fn new(load_latency: u64) -> Self {
        FixedLatencyMemory { load_latency, loads: 0, stores: 0 }
    }

    /// Number of loads serviced.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of stores received.
    pub fn stores(&self) -> u64 {
        self.stores
    }
}

impl MemSystem for FixedLatencyMemory {
    fn load(&mut self, now: Cycle, _pc: Addr, _addr: Addr) -> Cycle {
        self.loads += 1;
        now + self.load_latency
    }

    fn store(&mut self, _now: Cycle, _pc: Addr, _addr: Addr) {
        self.stores += 1;
    }

    fn ifetch(&mut self, now: Cycle, _pc: Addr) -> Cycle {
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_counts_traffic() {
        let mut m = FixedLatencyMemory::new(5);
        assert_eq!(m.load(Cycle::ZERO, Addr::new(0), Addr::new(8)), Cycle::new(5));
        m.store(Cycle::ZERO, Addr::new(4), Addr::new(16));
        assert_eq!(m.loads(), 1);
        assert_eq!(m.stores(), 1);
        assert_eq!(m.ifetch(Cycle::new(9), Addr::new(0)), Cycle::new(9));
    }
}
