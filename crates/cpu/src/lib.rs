//! Out-of-order superscalar CPU timing model for the PSB simulator.
//!
//! This crate stands in for SimpleScalar's `sim-outorder`: an 8-way
//! dynamically scheduled core with a gshare-driven fetch unit, a 128-entry
//! reorder buffer, a 64-entry load/store queue, the paper's functional
//! unit mix and latencies, a minimum 8-cycle branch misprediction penalty,
//! 2-cycle store forwarding and selectable memory disambiguation (perfect
//! store sets or wait-for-all-stores).
//!
//! The pipeline is *trace-driven*: it replays the correct-path dynamic
//! instruction stream produced by a workload generator (crate
//! `psb-workloads`) while modeling all timing interactions — dependences,
//! structural hazards, branch mispredictions and the memory system, which
//! it reaches through the [`MemSystem`] trait.
//!
//! # Example
//!
//! ```
//! use psb_common::Addr;
//! use psb_cpu::{CpuConfig, DynInst, FixedLatencyMemory, Pipeline, Reg};
//!
//! let trace = (0..64).map(|i| {
//!     DynInst::alu(Addr::new(0x1000 + 4 * i), Reg::new((i % 8) as u8), None, None)
//! });
//! let mut mem = FixedLatencyMemory::new(1);
//! let stats = Pipeline::new(CpuConfig::baseline()).run(trace, &mut mem, u64::MAX);
//! assert_eq!(stats.committed, 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod config;
mod fu;
mod inst;
mod mem_iface;
mod pipeline;

pub use bpred::{BpredConfig, BpredStats, BranchPredictor, Prediction};
pub use config::{CpuConfig, Disambiguation};
pub use fu::FuPool;
pub use inst::{BranchInfo, BranchKind, DynInst, FuClass, Op, Reg};
pub use mem_iface::{FixedLatencyMemory, MemSystem};
pub use pipeline::{CpuStats, Pipeline};
