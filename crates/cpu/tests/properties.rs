//! Property-style tests for the out-of-order pipeline: pseudo-random
//! well-formed traces must commit completely, in bounded time, without
//! deadlock, under both disambiguation policies. Cases are generated
//! from fixed seeds with the workspace PRNG so the suite runs offline.

use psb_common::{Addr, SplitMix64};
use psb_cpu::{
    BranchInfo, BranchKind, CpuConfig, Disambiguation, DynInst, FixedLatencyMemory, Op, Pipeline,
    Reg,
};

/// One abstract instruction choice; lowered to a consistent trace.
#[derive(Clone, Debug)]
enum Item {
    Alu { dst: u8, src: u8 },
    Fp { op: u8, dst: u8, src: u8 },
    Load { dst: u8, base: u8, slot: u16 },
    Store { data: u8, slot: u16 },
    CondBranch { taken: bool },
}

fn item(rng: &mut SplitMix64) -> Item {
    match rng.below(5) {
        0 => Item::Alu { dst: rng.below(32) as u8, src: rng.below(32) as u8 },
        1 => {
            Item::Fp { op: rng.below(6) as u8, dst: rng.below(32) as u8, src: rng.below(32) as u8 }
        }
        2 => Item::Load {
            dst: rng.below(32) as u8,
            base: rng.below(32) as u8,
            slot: rng.below(1 << 16) as u16,
        },
        3 => Item::Store { data: rng.below(32) as u8, slot: rng.below(1 << 16) as u16 },
        _ => Item::CondBranch { taken: rng.below(2) == 0 },
    }
}

fn items(rng: &mut SplitMix64, max: u64) -> Vec<Item> {
    let n = 1 + rng.below(max - 1);
    (0..n).map(|_| item(rng)).collect()
}

/// Lowers abstract items to a control-flow-consistent trace: every branch
/// jumps forward by 8 bytes (skipping one padding ALU when taken).
fn lower(items: &[Item]) -> Vec<DynInst> {
    let mut pc = Addr::new(0x10_0000);
    let mut out = Vec::new();
    for it in items {
        match *it {
            Item::Alu { dst, src } => {
                out.push(DynInst::alu(pc, Reg::new(dst), Some(Reg::new(src)), None));
                pc = pc.offset(4);
            }
            Item::Fp { op, dst, src } => {
                let op = match op % 6 {
                    0 => Op::FpAdd,
                    1 => Op::FpMult,
                    2 => Op::FpDiv,
                    3 => Op::IntMult,
                    4 => Op::IntDiv,
                    _ => Op::IntAlu,
                };
                out.push(DynInst {
                    pc,
                    op,
                    dst: Some(Reg::new(dst)),
                    src1: Some(Reg::new(src)),
                    src2: None,
                    mem_addr: None,
                    mem_size: 0,
                    branch: None,
                });
                pc = pc.offset(4);
            }
            Item::Load { dst, base, slot } => {
                let addr = Addr::new(0x20_0000 + slot as u64 * 8);
                out.push(DynInst::load(pc, Reg::new(dst), Some(Reg::new(base)), addr, 8));
                pc = pc.offset(4);
            }
            Item::Store { data, slot } => {
                let addr = Addr::new(0x20_0000 + slot as u64 * 8);
                out.push(DynInst::store(pc, Some(Reg::new(data)), None, addr, 8));
                pc = pc.offset(4);
            }
            Item::CondBranch { taken } => {
                let target = pc.offset(8);
                out.push(DynInst::branch(
                    pc,
                    Some(Reg::new(1)),
                    BranchInfo { kind: BranchKind::Conditional, taken, target },
                ));
                if taken {
                    pc = target;
                } else {
                    pc = pc.offset(4);
                    out.push(DynInst::alu(pc, Reg::new(0), None, None));
                    pc = pc.offset(4);
                }
            }
        }
    }
    out
}

/// Every well-formed trace commits fully, takes at least the
/// width-limited minimum number of cycles, and never deadlocks —
/// under both disambiguation policies and various load latencies.
#[test]
fn pipeline_commits_everything() {
    let mut meta = SplitMix64::new(0xC3117);
    for case in 0..48 {
        let trace = lower(&items(&mut meta, 200));
        let n = trace.len() as u64;
        let latency = 1 + meta.below(59);
        let perfect = meta.below(2) == 0;
        let config = CpuConfig::baseline().with_disambiguation(if perfect {
            Disambiguation::Perfect
        } else {
            Disambiguation::WaitForStores
        });
        let mut mem = FixedLatencyMemory::new(latency);
        let stats = Pipeline::new(config).run(trace, &mut mem, u64::MAX);
        assert_eq!(stats.committed, n, "case {case}");
        assert!(stats.cycles >= n / 8, "case {case}: cannot beat the commit width");
        assert!(stats.ipc() <= 8.0 + 1e-9, "case {case}");
        // Accounting adds up.
        let counted = stats.loads + stats.stores + stats.branches;
        assert!(counted <= stats.committed, "case {case}");
        assert_eq!(stats.load_latency.count(), stats.loads, "case {case}");
        assert!(stats.forwarded_loads <= stats.loads, "case {case}");
    }
}

/// Determinism: the same trace and configuration give identical
/// cycle counts.
#[test]
fn pipeline_is_deterministic() {
    let mut meta = SplitMix64::new(0xD37);
    for case in 0..48 {
        let trace = lower(&items(&mut meta, 100));
        let mut m1 = FixedLatencyMemory::new(7);
        let mut m2 = FixedLatencyMemory::new(7);
        let s1 = Pipeline::new(CpuConfig::baseline()).run(trace.clone(), &mut m1, u64::MAX);
        let s2 = Pipeline::new(CpuConfig::baseline()).run(trace, &mut m2, u64::MAX);
        assert_eq!(s1.cycles, s2.cycles, "case {case}");
        assert_eq!(s1.committed, s2.committed, "case {case}");
        assert_eq!(m1.loads(), m2.loads(), "case {case}");
    }
}

/// Memory latency can only slow the machine down.
#[test]
fn slower_memory_never_speeds_up() {
    let mut meta = SplitMix64::new(0x510);
    for case in 0..48 {
        let trace = lower(&items(&mut meta, 120));
        let mut fast_mem = FixedLatencyMemory::new(1);
        let mut slow_mem = FixedLatencyMemory::new(80);
        let fast = Pipeline::new(CpuConfig::baseline()).run(trace.clone(), &mut fast_mem, u64::MAX);
        let slow = Pipeline::new(CpuConfig::baseline()).run(trace, &mut slow_mem, u64::MAX);
        assert!(slow.cycles >= fast.cycles, "case {case}");
    }
}
