//! Property-based tests for the out-of-order pipeline: arbitrary
//! well-formed traces must commit completely, in bounded time, without
//! deadlock, under both disambiguation policies.

use proptest::prelude::*;
use psb_common::Addr;
use psb_cpu::{
    BranchInfo, BranchKind, CpuConfig, Disambiguation, DynInst, FixedLatencyMemory, Op,
    Pipeline, Reg,
};

/// One abstract instruction choice; lowered to a consistent trace.
#[derive(Clone, Debug)]
enum Item {
    Alu { dst: u8, src: u8 },
    Fp { op: u8, dst: u8, src: u8 },
    Load { dst: u8, base: u8, slot: u16 },
    Store { data: u8, slot: u16 },
    CondBranch { taken: bool },
}

fn item() -> impl Strategy<Value = Item> {
    prop_oneof![
        (0u8..32, 0u8..32).prop_map(|(dst, src)| Item::Alu { dst, src }),
        (0u8..6, 0u8..32, 0u8..32).prop_map(|(op, dst, src)| Item::Fp { op, dst, src }),
        (0u8..32, 0u8..32, any::<u16>()).prop_map(|(dst, base, slot)| Item::Load { dst, base, slot }),
        (0u8..32, any::<u16>()).prop_map(|(data, slot)| Item::Store { data, slot }),
        any::<bool>().prop_map(|taken| Item::CondBranch { taken }),
    ]
}

/// Lowers abstract items to a control-flow-consistent trace: every branch
/// jumps forward by 8 bytes (skipping one padding ALU when taken).
fn lower(items: &[Item]) -> Vec<DynInst> {
    let mut pc = Addr::new(0x10_0000);
    let mut out = Vec::new();
    for it in items {
        match *it {
            Item::Alu { dst, src } => {
                out.push(DynInst::alu(pc, Reg::new(dst), Some(Reg::new(src)), None));
                pc = pc.offset(4);
            }
            Item::Fp { op, dst, src } => {
                let op = match op % 6 {
                    0 => Op::FpAdd,
                    1 => Op::FpMult,
                    2 => Op::FpDiv,
                    3 => Op::IntMult,
                    4 => Op::IntDiv,
                    _ => Op::IntAlu,
                };
                out.push(DynInst {
                    pc,
                    op,
                    dst: Some(Reg::new(dst)),
                    src1: Some(Reg::new(src)),
                    src2: None,
                    mem_addr: None,
                    mem_size: 0,
                    branch: None,
                });
                pc = pc.offset(4);
            }
            Item::Load { dst, base, slot } => {
                let addr = Addr::new(0x20_0000 + slot as u64 * 8);
                out.push(DynInst::load(pc, Reg::new(dst), Some(Reg::new(base)), addr, 8));
                pc = pc.offset(4);
            }
            Item::Store { data, slot } => {
                let addr = Addr::new(0x20_0000 + slot as u64 * 8);
                out.push(DynInst::store(pc, Some(Reg::new(data)), None, addr, 8));
                pc = pc.offset(4);
            }
            Item::CondBranch { taken } => {
                let target = pc.offset(8);
                out.push(DynInst::branch(
                    pc,
                    Some(Reg::new(1)),
                    BranchInfo { kind: BranchKind::Conditional, taken, target },
                ));
                if taken {
                    pc = target;
                } else {
                    pc = pc.offset(4);
                    out.push(DynInst::alu(pc, Reg::new(0), None, None));
                    pc = pc.offset(4);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every well-formed trace commits fully, takes at least the
    /// width-limited minimum number of cycles, and never deadlocks —
    /// under both disambiguation policies and various load latencies.
    #[test]
    fn pipeline_commits_everything(
        items in proptest::collection::vec(item(), 1..200),
        latency in 1u64..60,
        perfect in any::<bool>(),
    ) {
        let trace = lower(&items);
        let n = trace.len() as u64;
        let config = CpuConfig::baseline().with_disambiguation(if perfect {
            Disambiguation::Perfect
        } else {
            Disambiguation::WaitForStores
        });
        let mut mem = FixedLatencyMemory::new(latency);
        let stats = Pipeline::new(config).run(trace, &mut mem, u64::MAX);
        prop_assert_eq!(stats.committed, n);
        prop_assert!(stats.cycles >= n / 8, "cannot beat the commit width");
        prop_assert!(stats.ipc() <= 8.0 + 1e-9);
        // Accounting adds up.
        let counted = stats.loads + stats.stores + stats.branches;
        prop_assert!(counted <= stats.committed);
        prop_assert_eq!(stats.load_latency.count(), stats.loads);
        prop_assert!(stats.forwarded_loads <= stats.loads);
    }

    /// Determinism: the same trace and configuration give identical
    /// cycle counts.
    #[test]
    fn pipeline_is_deterministic(items in proptest::collection::vec(item(), 1..100)) {
        let trace = lower(&items);
        let mut m1 = FixedLatencyMemory::new(7);
        let mut m2 = FixedLatencyMemory::new(7);
        let s1 = Pipeline::new(CpuConfig::baseline()).run(trace.clone(), &mut m1, u64::MAX);
        let s2 = Pipeline::new(CpuConfig::baseline()).run(trace, &mut m2, u64::MAX);
        prop_assert_eq!(s1.cycles, s2.cycles);
        prop_assert_eq!(s1.committed, s2.committed);
        prop_assert_eq!(m1.loads(), m2.loads());
    }

    /// Memory latency can only slow the machine down.
    #[test]
    fn slower_memory_never_speeds_up(items in proptest::collection::vec(item(), 1..120)) {
        let trace = lower(&items);
        let mut fast_mem = FixedLatencyMemory::new(1);
        let mut slow_mem = FixedLatencyMemory::new(80);
        let fast = Pipeline::new(CpuConfig::baseline()).run(trace.clone(), &mut fast_mem, u64::MAX);
        let slow = Pipeline::new(CpuConfig::baseline()).run(trace, &mut slow_mem, u64::MAX);
        prop_assert!(slow.cycles >= fast.cycles);
    }
}
