//! The observability interface *exported by* the prefetch engines.
//!
//! `psb-core` used to depend on the `psb-obs` hub directly, which put the
//! whole observability stack (registry, tracing, lifecycle log) below the
//! hardware model in the crate DAG. This module inverts that dependency:
//! the engines report through the [`StreamObs`] trait, and whoever owns a
//! concrete hub (the simulator) implements the trait as a thin bridge.
//! Core itself now only depends on the metric *handles* in `psb-common`.
//!
//! Every method has a no-op default, so a consumer that only cares about
//! one hook (say, counters) implements exactly that one.

use psb_common::metrics::Counter;
use std::rc::Rc;

/// A sink for stream-engine observability events.
///
/// Methods mirror the prefetch lifecycle of the paper: a prediction is
/// accepted ([`predicted`](StreamObs::predicted)), issued to the bus
/// ([`issued`](StreamObs::issued)), arrives
/// ([`filled`](StreamObs::filled) /
/// [`filled_block`](StreamObs::filled_block)), and is either consumed
/// ([`used`](StreamObs::used)), raced by the demand stream
/// ([`demand_raced`](StreamObs::demand_raced)) or thrown away at
/// reallocation ([`evicted_unused_block`](StreamObs::evicted_unused_block),
/// with the aggregate count on
/// [`stream_allocated`](StreamObs::stream_allocated)).
///
/// Cycles and addresses are plain `u64` so implementors need nothing
/// beyond `psb-common`.
pub trait StreamObs {
    /// A counter handle for `name`. The default hands back a detached
    /// counter that counts into the void.
    fn counter(&self, name: &str) -> Counter {
        let _ = name;
        Counter::new()
    }

    /// True when the sink wants per-block events
    /// ([`filled_block`](StreamObs::filled_block),
    /// [`evicted_unused_block`](StreamObs::evicted_unused_block),
    /// [`buffer_occupancy`](StreamObs::buffer_occupancy)), which cost the
    /// engine extra entry scans. Cached at attach time.
    fn wants_block_events(&self) -> bool {
        false
    }

    /// Names the trace track of stream buffer `buffer`.
    fn name_buffer_track(&self, buffer: usize, name: &str) {
        let _ = (buffer, name);
    }

    /// A stream buffer was (re)allocated to a new stream. `displaced`
    /// counts the not-yet-used entries thrown away by the reallocation.
    fn stream_allocated(&self, now: u64, buffer: usize, pc: u64, confidence: u64, displaced: u64) {
        let _ = (now, buffer, pc, confidence, displaced);
    }

    /// A block displaced unused at reallocation (per-block detail).
    fn evicted_unused_block(&self, now: u64, buffer: usize, block_base: u64) {
        let _ = (now, buffer, block_base);
    }

    /// A prediction was accepted into a stream-buffer entry.
    fn predicted(&self, now: u64, buffer: usize, block_base: u64) {
        let _ = (now, buffer, block_base);
    }

    /// A prefetch was issued at `now` and will arrive at `ready`.
    fn issued(&self, now: u64, buffer: usize, block_base: u64, ready: u64) {
        let _ = (now, buffer, block_base, ready);
    }

    /// `count` prefetched blocks arrived in `buffer` this cycle.
    fn filled(&self, now: u64, buffer: usize, count: u64) {
        let _ = (now, buffer, count);
    }

    /// A prefetched block arrived (per-block detail).
    fn filled_block(&self, now: u64, buffer: usize, block_base: u64) {
        let _ = (now, buffer, block_base);
    }

    /// A demand access consumed a prefetched block; `late_by` is the
    /// residual fill latency it had to wait out.
    fn used(&self, now: u64, buffer: usize, block_base: u64, late_by: u64) {
        let _ = (now, buffer, block_base, late_by);
    }

    /// The demand stream reached an allocated entry before it issued.
    fn demand_raced(&self, now: u64, buffer: usize, block_base: u64) {
        let _ = (now, buffer, block_base);
    }

    /// Samples a buffer's occupancy/priority counters (per-block detail).
    fn buffer_occupancy(&self, now: u64, buffer: usize, ready: u64, in_flight: u64, priority: u64) {
        let _ = (now, buffer, ready, in_flight, priority);
    }
}

impl std::fmt::Debug for dyn StreamObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn StreamObs")
    }
}

/// A shared, cheaply-cloneable observability sink handle — the form the
/// engines store. `Rc` (not `Arc`): the hub it typically bridges to is
/// single-threaded by design, one per sweep worker.
pub type SharedStreamObs = Rc<dyn StreamObs>;

#[cfg(test)]
mod tests {
    use super::*;

    /// The defaults make an empty impl a complete, silent sink.
    struct Null;
    impl StreamObs for Null {}

    #[test]
    fn default_methods_are_silent_noops() {
        let obs: SharedStreamObs = Rc::new(Null);
        assert!(!obs.wants_block_events());
        let c = obs.counter("anything");
        c.inc();
        assert_eq!(c.get(), 1, "detached counters still count locally");
        obs.name_buffer_track(0, "sb-0");
        obs.stream_allocated(1, 0, 0x1000, 3, 0);
        obs.predicted(2, 0, 0x40);
        obs.issued(3, 0, 0x40, 13);
        obs.filled(13, 0, 1);
        obs.filled_block(13, 0, 0x40);
        obs.used(14, 0, 0x40, 0);
        obs.demand_raced(15, 0, 0x80);
        obs.evicted_unused_block(16, 0, 0xc0);
        obs.buffer_occupancy(17, 0, 1, 2, 3);
        assert_eq!(format!("{:?}", &*obs), "dyn StreamObs");
    }
}
