//! The stream-buffer prefetch engine.

use crate::obs::SharedStreamObs;
use crate::predictor::{
    normalize_stride, PcStridePredictor, SequentialPredictor, SfmPredictor, StreamPredictor,
};
use crate::prefetcher::{PrefetchSink, PrefetchStats, Prefetcher, SbLookup};
use crate::stream::{AllocFilter, SbConfig, SbEntry, Scheduler, StreamBuffer};
use psb_common::{Addr, Cycle};

/// Which shared resource a buffer is competing for this cycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Port {
    Predict,
    Prefetch,
}

/// Mirrors an [`SbEntry`] into the auditor's neutral entry type.
#[cfg(feature = "check")]
fn entry_kind(e: &SbEntry) -> psb_check::EntryKind {
    match *e {
        SbEntry::Empty => psb_check::EntryKind::Empty,
        SbEntry::Allocated { block } => psb_check::EntryKind::Allocated(block),
        SbEntry::InFlight { block, .. } => psb_check::EntryKind::InFlight(block),
        SbEntry::Ready { block } => psb_check::EntryKind::Ready(block),
    }
}

/// A file of stream buffers directed by an address predictor.
///
/// This single engine expresses the whole design space of Section 4:
///
/// * with an [`SfmPredictor`] it is the paper's **Predictor-Directed
///   Stream Buffer** ([`PsbPrefetcher`]);
/// * with a [`PcStridePredictor`] and the two-miss filter it is the
///   PC-stride baseline of Farkas et al. ([`StrideStreamBuffers`]);
/// * with a [`SequentialPredictor`] and no filter it is Jouppi's original
///   sequential stream buffer ([`SequentialStreamBuffers`]).
///
/// Per-cycle behaviour ([`Prefetcher::tick`]): at most **one** prediction
/// is generated (the predictor is single-ported and shared), and at most
/// **one** prefetch is issued, only "if the L1-L2 bus is free at the
/// start of \[the\] cycle". Which buffer wins each port is decided by the
/// configured [`Scheduler`]. Predictions already covered by any stream
/// buffer are suppressed (streams stay non-overlapping), but the stream's
/// history still advances.
#[derive(Clone, Debug)]
pub struct StreamEngine<P> {
    config: SbConfig,
    predictor: P,
    buffers: Vec<StreamBuffer>,
    stats: PrefetchStats,
    stamp: u64,
    alloc_requests: u64,
    rr_predict: usize,
    rr_prefetch: usize,
    name: String,
    /// Observability sink, when attached; `None` costs nothing.
    obs: Option<SharedStreamObs>,
    /// Cached at attach time: whether the hub wants per-block events
    /// (tracing or lifecycle logging), which require extra entry scans.
    obs_detail: bool,
}

/// The paper's Predictor-Directed Stream Buffer: a [`StreamEngine`]
/// directed by the Stride-Filtered Markov predictor.
pub type PsbPrefetcher = StreamEngine<SfmPredictor>;

/// The PC-stride stream buffers of Farkas et al. (the paper's baseline).
pub type StrideStreamBuffers = StreamEngine<PcStridePredictor>;

/// Jouppi's sequential stream buffers.
pub type SequentialStreamBuffers = StreamEngine<SequentialPredictor>;

impl PsbPrefetcher {
    /// Builds a PSB with the paper's SFM predictor (256-entry stride
    /// table, 2K-entry differential Markov table) under `config`.
    pub fn psb(config: SbConfig) -> Self {
        let name = format!(
            "psb-{}-{}",
            match config.filter {
                AllocFilter::None => "nofilter",
                AllocFilter::TwoMiss => "2miss",
                AllocFilter::Confidence { .. } => "confalloc",
            },
            match config.scheduler {
                Scheduler::RoundRobin => "rr",
                Scheduler::Priority => "priority",
            }
        );
        StreamEngine::new(config, SfmPredictor::paper_baseline(), name)
    }
}

impl StrideStreamBuffers {
    /// Builds the PC-stride baseline (two-miss filter, round-robin).
    pub fn pc_stride() -> Self {
        StreamEngine::new(
            SbConfig::stride_baseline(),
            PcStridePredictor::paper_baseline(),
            "pc-stride".to_owned(),
        )
    }
}

impl SequentialStreamBuffers {
    /// Builds Jouppi-style sequential stream buffers.
    ///
    /// The predictor's blanket confidence and the buffers' priority
    /// ceiling both derive from `config.priority_max`, so a confidence
    /// allocation filter (were one configured) could never see a load
    /// outrank the cap the buffers themselves saturate at.
    pub fn sequential() -> Self {
        let config = SbConfig::sequential_baseline();
        StreamEngine::new(
            config,
            SequentialPredictor::new(config.block, config.priority_max),
            "sequential".to_owned(),
        )
    }
}

impl<P: StreamPredictor> StreamEngine<P> {
    /// Creates an engine from a configuration, a predictor and a report
    /// name.
    pub fn new(config: SbConfig, predictor: P, name: String) -> Self {
        assert!(config.buffers > 0, "need at least one stream buffer");
        StreamEngine {
            buffers: (0..config.buffers)
                .map(|_| StreamBuffer::new(config.entries_per_buffer, config.priority_max))
                .collect(),
            config,
            predictor,
            stats: PrefetchStats::default(),
            stamp: 1,
            alloc_requests: 0,
            rr_predict: 0,
            rr_prefetch: 0,
            name,
            obs: None,
            obs_detail: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SbConfig {
        &self.config
    }

    /// Read-only access to the directing predictor (e.g. to extract the
    /// Markov delta histogram for Figure 4).
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// The stream buffers, for inspection.
    pub fn buffers(&self) -> &[StreamBuffer] {
        &self.buffers
    }

    fn bump(&mut self) -> u64 {
        let s = self.stamp;
        self.stamp += 1;
        s
    }

    fn promote_all(&mut self, now: Cycle) {
        for (i, b) in self.buffers.iter_mut().enumerate() {
            // Idle buffers (nothing in flight) take the early exit before
            // any per-entry work.
            if !b.has_in_flight() {
                continue;
            }
            if self.obs_detail {
                // Per-block fill events need the blocks about to be
                // promoted; only scanned when tracing is on.
                if let Some(obs) = &self.obs {
                    for e in b.entries() {
                        if let SbEntry::InFlight { block, ready } = e {
                            if ready <= now {
                                obs.filled_block(now.raw(), i, block.base(self.config.block).raw());
                            }
                        }
                    }
                }
            }
            let promoted = b.promote_arrived(now);
            if promoted > 0 {
                if let Some(obs) = &self.obs {
                    obs.filled(now.raw(), i, promoted as u64);
                }
            }
        }
    }

    /// Samples `buffer`'s occupancy counter track after a state change
    /// (trace-only: a no-op unless per-block detail is on).
    fn emit_occupancy(&self, now: Cycle, buffer: usize) {
        if !self.obs_detail {
            return;
        }
        let Some(obs) = &self.obs else {
            return;
        };
        let b = &self.buffers[buffer];
        let (mut ready, mut in_flight) = (0u64, 0u64);
        for i in 0..b.len() {
            if b.is_ready(i) {
                ready += 1;
            } else if b.is_in_flight(i) {
                in_flight += 1;
            }
        }
        obs.buffer_occupancy(
            now.raw(),
            buffer,
            ready,
            in_flight,
            self.buffers[buffer].priority() as u64,
        );
    }

    /// Publishes the whole stream file to the invariant auditor
    /// (non-overlap and priority-counter range checks).
    #[cfg(feature = "check")]
    fn audit_streams(&self, now: Cycle) {
        let buffers = self
            .buffers
            .iter()
            .map(|b| psb_check::BufferSnapshot {
                active: b.is_active(),
                priority: b.priority(),
                priority_max: self.config.priority_max,
                entries: b.entries().iter().map(entry_kind).collect(),
            })
            .collect();
        psb_check::audit(&psb_check::Snapshot::Streams { now, buffers });
    }

    /// Picks the buffer that wins `port` this cycle among those
    /// satisfying `eligible`, per the configured scheduler.
    #[cfg_attr(not(feature = "check"), allow(unused_variables))]
    fn pick(
        &mut self,
        now: Cycle,
        port: Port,
        eligible: impl Fn(&StreamBuffer) -> bool,
    ) -> Option<usize> {
        let n = self.buffers.len();
        let winner = match self.config.scheduler {
            Scheduler::RoundRobin => {
                let start = match port {
                    Port::Predict => self.rr_predict,
                    Port::Prefetch => self.rr_prefetch,
                };
                (1..=n).map(|k| (start + k) % n).find(|&i| eligible(&self.buffers[i]))
            }
            Scheduler::Priority => self
                .buffers
                .iter()
                .enumerate()
                .filter(|(_, b)| eligible(b))
                // Highest priority wins; among equals, least recently
                // serviced (LRU).
                .max_by_key(|(_, b)| (b.priority(), std::cmp::Reverse(b.last_service())))
                .map(|(i, _)| i),
        }?;
        #[cfg(feature = "check")]
        if self.config.scheduler == Scheduler::Priority {
            let contender =
                |i: usize| psb_check::Contender { index: i, priority: self.buffers[i].priority() };
            psb_check::audit(&psb_check::Snapshot::Grant {
                now,
                winner: contender(winner),
                eligible: (0..n).filter(|&i| eligible(&self.buffers[i])).map(contender).collect(),
            });
        }
        match port {
            Port::Predict => self.rr_predict = winner,
            Port::Prefetch => self.rr_prefetch = winner,
        }
        let stamp = self.bump();
        self.buffers[winner].serviced(stamp);
        Some(winner)
    }

    /// True if any buffer already tracks `block` (in any non-empty entry).
    fn covered(&self, block: psb_common::BlockAddr) -> bool {
        self.buffers.iter().any(|b| b.find(block).is_some())
    }

    /// Chooses the reallocation victim under the current filter, given
    /// the requesting load's confidence. Returns `None` when no buffer
    /// may be displaced.
    ///
    /// A load that already owns a stream re-steers its own buffer rather
    /// than claiming a second one: two buffers walking the same load's
    /// stream would only fight the non-overlap check and burn the shared
    /// predictor port (the "streams being followed by multiple stream
    /// buffers [must] be non-overlapping" rule of Farkas et al.).
    fn pick_victim(&self, pc: Addr, confidence: u32) -> Option<usize> {
        if let Some(own) = self.buffers.iter().position(|b| b.is_active() && b.state().pc == pc) {
            return Some(own);
        }
        match self.config.filter {
            AllocFilter::Confidence { .. } => {
                // "a load is only allocated a stream buffer if there is at
                // least one stream buffer whose priority confidence
                // counter is less or equal to the accuracy confidence
                // counter of the load."
                self.buffers
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| !b.is_active() || b.priority() <= confidence)
                    .min_by_key(|(_, b)| (b.is_active(), b.priority(), b.last_touch()))
                    .map(|(i, _)| i)
            }
            _ => {
                // Oldest-allocation victim, preferring inactive buffers —
                // allocations rotate through the file regardless of how
                // useful a stream has been, which is precisely what lets
                // many-stream programs thrash (Section 4.3's motivation
                // for confidence allocation).
                self.buffers
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, b)| (b.is_active(), b.last_alloc()))
                    .map(|(i, _)| i)
            }
        }
    }
}

impl<P: StreamPredictor> Prefetcher for StreamEngine<P> {
    fn lookup(&mut self, now: Cycle, addr: Addr) -> SbLookup {
        self.stats.lookups += 1;
        self.promote_all(now);
        let block = addr.block(self.config.block);
        for i in 0..self.buffers.len() {
            let Some(idx) = self.buffers[i].find(block) else {
                continue;
            };
            if self.buffers[i].is_allocated(idx) {
                // Predicted but never prefetched: the demand access
                // wins the race; free the entry and treat as a miss.
                self.buffers[i].set_entry(idx, SbEntry::Empty);
                if let Some(obs) = &self.obs {
                    obs.demand_raced(now.raw(), i, block.base(self.config.block).raw());
                }
                return SbLookup::Miss;
            }
            // In flight or ready (find() never returns empty slots):
            // the buffer hit; in-flight data arrives at its fill time.
            let ready = if self.buffers[i].is_in_flight(idx) {
                self.buffers[i].fill_ready_at(idx)
            } else {
                now
            };
            self.stats.hits += 1;
            self.stats.used += 1;
            let bonus = self.config.hit_bonus;
            let stamp = self.bump();
            self.buffers[i].set_entry(idx, SbEntry::Empty);
            self.buffers[i].reward(bonus);
            self.buffers[i].touch(stamp);
            if let Some(obs) = &self.obs {
                let late_by = ready.raw().saturating_sub(now.raw());
                obs.used(now.raw(), i, block.base(self.config.block).raw(), late_by);
                self.emit_occupancy(now, i);
            }
            return SbLookup::Hit { ready };
        }
        SbLookup::Miss
    }

    fn train(&mut self, _now: Cycle, pc: Addr, addr: Addr) {
        self.predictor.train(pc, addr);
    }

    fn allocate(&mut self, now: Cycle, pc: Addr, addr: Addr) {
        // Aging: "after several allocation requests (i.e. data cache
        // misses that also miss in stream buffers) we decrement each
        // stream buffer's priority counter".
        self.alloc_requests += 1;
        if self.alloc_requests.is_multiple_of(self.config.aging_period) {
            for b in &mut self.buffers {
                b.age();
            }
        }

        let info = self.predictor.alloc_info(pc, addr);
        let admitted =
            match self.config.filter {
                AllocFilter::None => Some(info.map_or((self.config.block as i64, 0, 0), |i| {
                    (i.stride, i.confidence, i.history)
                })),
                AllocFilter::TwoMiss => {
                    info.filter(|i| i.two_miss_ok).map(|i| (i.stride, i.confidence, i.history))
                }
                AllocFilter::Confidence { threshold } => info
                    .filter(|i| i.confidence >= threshold)
                    .map(|i| (i.stride, i.confidence, i.history)),
            };

        let Some((stride, confidence, history)) = admitted else {
            self.stats.alloc_rejected += 1;
            return;
        };
        let Some(victim) = self.pick_victim(pc, confidence) else {
            self.stats.alloc_rejected += 1;
            return;
        };
        let stride = normalize_stride(stride, self.config.block);
        let stamp = self.bump();
        if let Some(obs) = self.obs.clone() {
            // Entries holding fetched-but-unused data die here: the
            // paper's "evicted unused" lifecycle terminus.
            let displaced = self.buffers[victim].fetched_unused() as u64;
            if self.obs_detail {
                for e in self.buffers[victim].entries() {
                    if let SbEntry::InFlight { block, .. } | SbEntry::Ready { block } = e {
                        obs.evicted_unused_block(
                            now.raw(),
                            victim,
                            block.base(self.config.block).raw(),
                        );
                    }
                }
            }
            obs.stream_allocated(now.raw(), victim, pc.raw(), confidence as u64, displaced);
        }
        self.buffers[victim].reallocate(pc, addr, stride, confidence, stamp);
        // History-based predictors seed the stream's one-deep history
        // from the predictor's tables ("it copies its PC, current
        // address, and any additional prediction information to the
        // stream buffer from the address predictor").
        self.buffers[victim].state_mut().history = history;
        self.stats.allocations += 1;
    }

    fn tick(&mut self, now: Cycle, sink: &mut dyn PrefetchSink) {
        self.promote_all(now);

        // Prediction port: one buffer per cycle queries the shared
        // predictor.
        if let Some(i) = self.pick(now, Port::Predict, StreamBuffer::can_predict) {
            self.stats.predictions += 1;
            if let Some(addr) = self.predictor.predict(self.buffers[i].state_mut()) {
                let block = addr.block(self.config.block);
                if self.covered(block) {
                    // Overlapping streams are not followed; the history
                    // has still advanced.
                    self.stats.suppressed += 1;
                } else {
                    let idx = self.buffers[i]
                        .first_empty()
                        .expect("invariant: can_predict verified a free entry");
                    self.buffers[i].set_entry(idx, SbEntry::Allocated { block });
                    if let Some(obs) = &self.obs {
                        obs.predicted(now.raw(), i, block.base(self.config.block).raw());
                    }
                }
            }
        }

        // Prefetch port: one prefetch if the L1<->L2 bus is idle.
        if sink.bus_free(now) {
            if let Some(i) = self.pick(now, Port::Prefetch, StreamBuffer::can_prefetch) {
                let idx = self.buffers[i]
                    .first_allocated()
                    .expect("invariant: can_prefetch verified an allocated entry");
                let block = self.buffers[i].block_at(idx);
                #[cfg(feature = "check")]
                psb_check::audit(&psb_check::Snapshot::PrefetchIssue {
                    now,
                    entries: self.buffers[i].entries().iter().map(entry_kind).collect(),
                    issued: idx,
                });
                let ready = sink.fetch(now, block.base(self.config.block));
                self.buffers[i].set_entry(idx, SbEntry::InFlight { block, ready });
                self.stats.issued += 1;
                if let Some(obs) = &self.obs {
                    obs.issued(now.raw(), i, block.base(self.config.block).raw(), ready.raw());
                    self.emit_occupancy(now, i);
                }
            }
        }

        #[cfg(feature = "check")]
        self.audit_streams(now);
    }

    /// The engine's [`Prefetcher::tick`] is externally a no-op exactly
    /// when neither per-cycle port has work: no buffer can accept a
    /// prediction and none holds a pending prefetch. Promotion of
    /// in-flight fills may be deferred safely — it never changes port
    /// eligibility, and [`Prefetcher::lookup`] promotes on its own before
    /// probing — so in-flight entries do not block quiescence. With an
    /// observer attached the fast path is disabled: fill events must be
    /// emitted on the exact promotion cycle. (Under the `check` feature
    /// quiescence is also disabled so the per-cycle invariant audits keep
    /// their full coverage.)
    fn quiescent(&self) -> bool {
        #[cfg(feature = "check")]
        return false;
        #[cfg(not(feature = "check"))]
        {
            self.obs.is_none() && self.buffers.iter().all(StreamBuffer::is_quiescent)
        }
    }

    fn attach_obs(&mut self, obs: &SharedStreamObs) {
        self.obs_detail = obs.wants_block_events();
        for i in 0..self.buffers.len() {
            obs.name_buffer_track(i, &format!("stream-buffer-{i}"));
        }
        self.predictor.attach_obs(obs.as_ref());
        self.obs = Some(obs.clone());
    }

    fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::StreamObs;
    use crate::prefetcher::TestSink;
    use psb_obs::Obs;
    use std::rc::Rc;

    /// Bridges the dev-only `psb_obs::Obs` hub onto the engine's sink
    /// trait (production code uses the simulator's own bridge).
    struct ObsBridge(Obs);

    impl StreamObs for ObsBridge {
        fn counter(&self, name: &str) -> psb_common::metrics::Counter {
            self.0.counter(name)
        }
        fn wants_block_events(&self) -> bool {
            self.0.wants_block_events()
        }
        fn name_buffer_track(&self, buffer: usize, name: &str) {
            self.0.name_buffer_track(buffer, name);
        }
        fn stream_allocated(
            &self,
            now: u64,
            buffer: usize,
            pc: u64,
            confidence: u64,
            displaced: u64,
        ) {
            self.0.stream_allocated(now, buffer, pc, confidence, displaced);
        }
        fn evicted_unused_block(&self, now: u64, buffer: usize, block_base: u64) {
            self.0.evicted_unused_block(now, buffer, block_base);
        }
        fn predicted(&self, now: u64, buffer: usize, block_base: u64) {
            self.0.predicted(now, buffer, block_base);
        }
        fn issued(&self, now: u64, buffer: usize, block_base: u64, ready: u64) {
            self.0.issued(now, buffer, block_base, ready);
        }
        fn filled(&self, now: u64, buffer: usize, count: u64) {
            self.0.filled(now, buffer, count);
        }
        fn filled_block(&self, now: u64, buffer: usize, block_base: u64) {
            self.0.filled_block(now, buffer, block_base);
        }
        fn used(&self, now: u64, buffer: usize, block_base: u64, late_by: u64) {
            self.0.used(now, buffer, block_base, late_by);
        }
        fn demand_raced(&self, now: u64, buffer: usize, block_base: u64) {
            self.0.demand_raced(now, buffer, block_base);
        }
        fn buffer_occupancy(
            &self,
            now: u64,
            buffer: usize,
            ready: u64,
            in_flight: u64,
            priority: u64,
        ) {
            self.0.buffer_occupancy(now, buffer, ready, in_flight, priority);
        }
    }

    fn shared(obs: &Obs) -> SharedStreamObs {
        Rc::new(ObsBridge(obs.clone()))
    }

    /// Trains a strided PC enough to open every filter, then allocates.
    fn engine_with_stream(config: SbConfig) -> StrideStreamBuffers {
        let mut e =
            StreamEngine::new(config, PcStridePredictor::paper_baseline(), "test".to_owned());
        let pc = Addr::new(0x1000);
        for i in 0..5u64 {
            e.train(Cycle::ZERO, pc, Addr::new(0x10_0000 + 0x40 * i));
        }
        e.allocate(Cycle::ZERO, pc, Addr::new(0x10_0100));
        assert_eq!(e.stats().allocations, 1);
        e
    }

    #[test]
    fn stream_predicts_prefetches_and_hits() {
        let mut e = engine_with_stream(SbConfig::stride_baseline());
        let mut sink = TestSink::new(10);
        // Tick a few cycles: predictions fill entries, prefetches issue.
        for c in 0..8 {
            e.tick(Cycle::new(c), &mut sink);
        }
        assert!(e.stats().issued >= 3, "issued = {}", e.stats().issued);
        // The stream (stride 0x40 from 0x10_0100) predicted 0x10_0140...
        assert_eq!(sink.fetched[0], Addr::new(0x10_0140));
        assert_eq!(sink.fetched[1], Addr::new(0x10_0180));
        // A demand miss on the prefetched block hits the stream buffer.
        let r = e.lookup(Cycle::new(50), Addr::new(0x10_0148));
        assert_eq!(r, SbLookup::Hit { ready: Cycle::new(50) });
        assert_eq!(e.stats().used, 1);
        assert_eq!(e.stats().hits, 1);
    }

    #[test]
    fn inflight_hit_reports_fill_time() {
        let mut e = engine_with_stream(SbConfig::stride_baseline());
        let mut sink = TestSink::new(100);
        // The tick both predicts and issues the prefetch at cycle 0.
        e.tick(Cycle::new(0), &mut sink);
        let r = e.lookup(Cycle::new(2), Addr::new(0x10_0140));
        assert_eq!(r, SbLookup::Hit { ready: Cycle::new(100) });
    }

    #[test]
    fn bus_gating_blocks_prefetch_but_not_prediction() {
        let mut e = engine_with_stream(SbConfig::stride_baseline());
        let mut sink = TestSink::new(10);
        sink.bus_is_free = false;
        for c in 0..10 {
            e.tick(Cycle::new(c), &mut sink);
        }
        assert_eq!(e.stats().issued, 0);
        assert!(e.stats().predictions > 0);
        // Entries sit in Allocated state awaiting the bus.
        sink.bus_is_free = true;
        e.tick(Cycle::new(10), &mut sink);
        assert_eq!(e.stats().issued, 1);
    }

    #[test]
    fn buffer_stops_after_entries_filled() {
        let mut e = engine_with_stream(SbConfig::stride_baseline());
        let mut sink = TestSink::new(1);
        for c in 0..40 {
            e.tick(Cycle::new(c), &mut sink);
        }
        // 4 entries per buffer: exactly 4 outstanding prefetches, then the
        // stream stalls until a hit frees an entry.
        assert_eq!(e.stats().issued, 4);
        let r = e.lookup(Cycle::new(41), Addr::new(0x10_0140));
        assert!(matches!(r, SbLookup::Hit { .. }));
        e.tick(Cycle::new(42), &mut sink);
        e.tick(Cycle::new(43), &mut sink);
        assert_eq!(e.stats().issued, 5, "freed entry lets the stream run on");
    }

    #[test]
    fn two_miss_filter_rejects_untrained_loads() {
        let mut e = StreamEngine::new(
            SbConfig::stride_baseline(),
            PcStridePredictor::paper_baseline(),
            "t".to_owned(),
        );
        // One training update: streak too short.
        e.train(Cycle::ZERO, Addr::new(0x2000), Addr::new(0x100));
        e.allocate(Cycle::ZERO, Addr::new(0x2000), Addr::new(0x100));
        assert_eq!(e.stats().allocations, 0);
        assert_eq!(e.stats().alloc_rejected, 1);
    }

    #[test]
    fn no_filter_allocates_cold_loads() {
        let mut e = StreamEngine::new(
            SbConfig::sequential_baseline(),
            PcStridePredictor::paper_baseline(),
            "t".to_owned(),
        );
        e.allocate(Cycle::ZERO, Addr::new(0x9999), Addr::new(0x5000));
        assert_eq!(e.stats().allocations, 1);
    }

    #[test]
    fn confidence_filter_gates_on_threshold_and_priorities() {
        let config = SbConfig::psb_conf_priority();
        let mut e = StreamEngine::new(config, PcStridePredictor::paper_baseline(), "t".to_owned());
        let pc = Addr::new(0x3000);
        // Unpredictable load: confidence stays 0 < threshold 1.
        let mut x = 1u64;
        for _ in 0..6 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            e.train(Cycle::ZERO, pc, Addr::new((x >> 20) & 0xffff_ffe0));
        }
        e.allocate(Cycle::ZERO, pc, Addr::new(0x100));
        assert_eq!(e.stats().allocations, 0, "low confidence must be rejected");

        // Predictable load passes.
        let pc2 = Addr::new(0x4000);
        for i in 0..6u64 {
            e.train(Cycle::ZERO, pc2, Addr::new(0x20_0000 + 0x40 * i));
        }
        e.allocate(Cycle::ZERO, pc2, Addr::new(0x20_0140));
        assert_eq!(e.stats().allocations, 1);
    }

    #[test]
    fn confidence_filter_protects_hot_buffers() {
        // One buffer, priority pumped high by hits: a low-confidence load
        // must not displace it.
        let mut config = SbConfig::psb_conf_priority();
        config.buffers = 1;
        let mut e = StreamEngine::new(config, PcStridePredictor::paper_baseline(), "t".to_owned());
        let pc = Addr::new(0x1000);
        for i in 0..8u64 {
            e.train(Cycle::ZERO, pc, Addr::new(0x10_0000 + 0x40 * i));
        }
        e.allocate(Cycle::ZERO, pc, Addr::new(0x10_01c0));
        assert_eq!(e.stats().allocations, 1);
        let mut sink = TestSink::new(1);
        // Generate hits to pump priority to saturation.
        for c in 0..30u64 {
            e.tick(Cycle::new(c), &mut sink);
            let next = Addr::new(0x10_0200 + 0x40 * (c / 3));
            e.lookup(Cycle::new(c), next);
        }
        assert!(e.buffers()[0].priority() > 7, "priority = {}", e.buffers()[0].priority());

        // A moderately-confident competitor (confidence < priority) loses.
        let pc2 = Addr::new(0x2000);
        for i in 0..3u64 {
            e.train(Cycle::ZERO, pc2, Addr::new(0x30_0000 + 0x20 * i));
        }
        let before = e.stats().allocations;
        e.allocate(Cycle::ZERO, pc2, Addr::new(0x30_0060));
        assert_eq!(e.stats().allocations, before, "hot buffer must survive");
    }

    #[test]
    fn aging_eventually_frees_stale_buffers() {
        let mut config = SbConfig::psb_conf_priority();
        config.buffers = 1;
        let mut e = StreamEngine::new(config, PcStridePredictor::paper_baseline(), "t".to_owned());
        let pc = Addr::new(0x1000);
        for i in 0..10u64 {
            e.train(Cycle::ZERO, pc, Addr::new(0x10_0000 + 0x40 * i));
        }
        e.allocate(Cycle::ZERO, pc, Addr::new(0x10_0240));
        let initial_priority = e.buffers()[0].priority();
        assert!(initial_priority >= 1);

        // 10 allocation requests per aging step; competitor has conf >= 1.
        let pc2 = Addr::new(0x2000);
        for i in 0..6u64 {
            e.train(Cycle::ZERO, pc2, Addr::new(0x30_0000 + 0x40 * i));
        }
        let mut allocated = false;
        for _ in 0..(initial_priority as u64 + 1) * 10 {
            e.allocate(Cycle::ZERO, pc2, Addr::new(0x30_0140));
            if e.stats().allocations >= 2 {
                allocated = true;
                break;
            }
        }
        assert!(allocated, "aging must eventually let the competitor in");
    }

    #[test]
    fn overlapping_predictions_are_suppressed() {
        // Two buffers forced onto the same strided region must not track
        // duplicate blocks.
        let mut e = StreamEngine::new(
            SbConfig::sequential_baseline(),
            SequentialPredictor::new(32, 7),
            "t".to_owned(),
        );
        e.allocate(Cycle::ZERO, Addr::new(0x1000), Addr::new(0x8000));
        e.allocate(Cycle::ZERO, Addr::new(0x2000), Addr::new(0x8000));
        let mut sink = TestSink::new(1);
        for c in 0..32 {
            e.tick(Cycle::new(c), &mut sink);
        }
        assert!(e.stats().suppressed > 0, "second stream must collide and be suppressed");
        // No block fetched twice.
        let mut blocks: Vec<u64> = sink.fetched.iter().map(|a| a.raw() / 32).collect();
        let n = blocks.len();
        blocks.sort_unstable();
        blocks.dedup();
        assert_eq!(blocks.len(), n, "duplicate prefetches issued");
    }

    #[test]
    fn round_robin_shares_the_ports() {
        let mut e = StreamEngine::new(
            SbConfig::sequential_baseline(),
            SequentialPredictor::new(32, 7),
            "t".to_owned(),
        );
        // Two streams in disjoint regions.
        e.allocate(Cycle::ZERO, Addr::new(0x1000), Addr::new(0x10_0000));
        e.allocate(Cycle::ZERO, Addr::new(0x2000), Addr::new(0x50_0000));
        let mut sink = TestSink::new(1);
        for c in 0..8 {
            e.tick(Cycle::new(c), &mut sink);
        }
        let regions: Vec<bool> = sink.fetched.iter().map(|a| a.raw() > 0x30_0000).collect();
        assert!(regions.contains(&true) && regions.contains(&false), "{regions:?}");
        // Alternating service.
        assert_ne!(regions[0], regions[1]);
    }

    #[test]
    fn priority_scheduler_prefers_hot_streams() {
        let config = SbConfig::sequential_baseline().with_scheduler(Scheduler::Priority);
        let mut e = StreamEngine::new(config, SequentialPredictor::new(32, 0), "t".to_owned());
        // Stream A (cold) and stream B; B gets hits -> priority rises.
        e.allocate(Cycle::ZERO, Addr::new(0x1000), Addr::new(0x10_0000));
        e.allocate(Cycle::ZERO, Addr::new(0x2000), Addr::new(0x50_0000));
        let mut sink = TestSink::new(1);
        for c in 0..6 {
            e.tick(Cycle::new(c), &mut sink);
        }
        // Hit stream B twice.
        e.lookup(Cycle::new(7), Addr::new(0x50_0020));
        e.lookup(Cycle::new(8), Addr::new(0x50_0040));
        let fetched_before = sink.fetched.len();
        for c in 9..13 {
            e.tick(Cycle::new(c), &mut sink);
        }
        // The hot stream is served first; the cold stream only gets the
        // bus once the hot stream has no work left.
        let new = &sink.fetched[fetched_before..];
        assert!(new.len() >= 2);
        assert!(
            new[0].raw() > 0x30_0000 && new[1].raw() > 0x30_0000,
            "hot stream must be served first: {new:?}"
        );
    }

    #[test]
    fn accuracy_counts_used_over_issued() {
        let mut e = engine_with_stream(SbConfig::stride_baseline());
        let mut sink = TestSink::new(1);
        for c in 0..20 {
            e.tick(Cycle::new(c), &mut sink);
        }
        // Use two of the four prefetched blocks.
        e.lookup(Cycle::new(30), Addr::new(0x10_0140));
        e.lookup(Cycle::new(31), Addr::new(0x10_0180));
        let s = e.stats();
        assert!(s.issued >= 4);
        assert_eq!(s.used, 2);
        assert!(s.accuracy() <= 0.5);
    }

    #[test]
    fn lookup_miss_on_unknown_block() {
        let mut e = engine_with_stream(SbConfig::stride_baseline());
        assert_eq!(e.lookup(Cycle::ZERO, Addr::new(0xdead_0000)), SbLookup::Miss);
    }

    #[test]
    fn psb_follows_markov_chain_end_to_end() {
        // The flagship behaviour: a repeating pointer chase that no stride
        // predictor can follow is prefetched by the PSB.
        let mut e = PsbPrefetcher::psb(SbConfig::psb_conf_priority());
        let pc = Addr::new(0x7000);
        // Chain links within ~1 MB of each other so the block deltas fit
        // the 16-bit Markov entries (as in real heaps, Figure 4).
        let chain = [0x10_0000u64, 0x12_a040, 0x11_7080, 0x13_30c0, 0x12_1100];
        // Two laps to train the Markov chain + confidence.
        for _ in 0..3 {
            for &a in &chain {
                e.train(Cycle::ZERO, pc, Addr::new(a));
            }
        }
        // Allocate at the chain head.
        e.allocate(Cycle::ZERO, pc, Addr::new(chain[0]));
        assert_eq!(e.stats().allocations, 1, "confident chase must allocate");
        let mut sink = TestSink::new(1);
        for c in 0..16 {
            e.tick(Cycle::new(c), &mut sink);
        }
        // The prefetch stream must walk the chain in order.
        let want: Vec<Addr> = chain[1..].iter().map(|&a| Addr::new(a)).collect();
        assert_eq!(&sink.fetched[..4.min(sink.fetched.len())], &want[..], "{:?}", sink.fetched);
    }

    #[test]
    fn obs_hooks_follow_the_lifecycle() {
        let mut e = engine_with_stream(SbConfig::stride_baseline());
        let obs = Obs::new();
        obs.enable_trace(1024);
        obs.enable_lifecycle_log();
        e.attach_obs(&shared(&obs));
        let mut sink = TestSink::new(5);
        for c in 0..20 {
            e.tick(Cycle::new(c), &mut sink);
        }
        // One on-time use, then a late use of a freshly issued block.
        e.lookup(Cycle::new(30), Addr::new(0x10_0140));
        e.tick(Cycle::new(31), &mut sink);
        e.lookup(Cycle::new(32), Addr::new(0x10_0240));
        let s = obs.lifecycle_stats();
        assert!(s.predicted >= 4, "predicted = {}", s.predicted);
        assert!(s.issued >= 4);
        assert!(s.filled >= 4);
        assert_eq!(s.used, 2);
        assert_eq!(s.used_late, 1);
        assert!(s.late_cycles.mean() > 0.0);
        // Per-block lifecycle events were staged for the event log.
        let staged = obs.drain_life_events();
        assert!(staged.iter().any(|ev| ev.stage == psb_obs::LifeStage::Filled));
        assert!(staged.iter().any(|ev| ev.stage == psb_obs::LifeStage::Late));
        // The trace carries the buffer track plus lifecycle events.
        let t = obs.trace_json().unwrap();
        let events = t.get("traceEvents").and_then(psb_obs::Json::as_arr).unwrap();
        assert!(events.len() > 8, "events = {}", events.len());
    }

    #[test]
    fn obs_counts_evictions_at_reallocation() {
        let mut config = SbConfig::stride_baseline();
        config.buffers = 1;
        let mut e =
            StreamEngine::new(config, PcStridePredictor::paper_baseline(), "test".to_owned());
        let obs = Obs::new();
        e.attach_obs(&shared(&obs));
        let pc = Addr::new(0x1000);
        for i in 0..5u64 {
            e.train(Cycle::ZERO, pc, Addr::new(0x10_0000 + 0x40 * i));
        }
        e.allocate(Cycle::ZERO, pc, Addr::new(0x10_0100));
        let mut sink = TestSink::new(1);
        for c in 0..10 {
            e.tick(Cycle::new(c), &mut sink);
        }
        assert!(obs.lifecycle_stats().issued >= 1);
        // A second trained PC steals the only buffer: everything fetched
        // but never used dies as evicted-unused.
        let pc2 = Addr::new(0x2000);
        for i in 0..5u64 {
            e.train(Cycle::ZERO, pc2, Addr::new(0x50_0000 + 0x40 * i));
        }
        e.allocate(Cycle::new(20), pc2, Addr::new(0x50_0100));
        let s = obs.lifecycle_stats();
        assert!(s.streams_allocated >= 2);
        assert!(s.evicted_unused >= 1, "evicted_unused = {}", s.evicted_unused);
    }

    #[test]
    fn sequential_engine_derives_one_priority_cap() {
        // Regression: the predictor's blanket confidence used to be
        // clamped to 7 while the buffers saturated at priority_max (12),
        // so freshly allocated sequential streams could never reach the
        // cap their own counters advertised.
        let e = SequentialStreamBuffers::sequential();
        let cap = e.config().priority_max;
        assert_eq!(e.predictor().confidence(), cap);
        let info = e.predictor().alloc_info(Addr::new(0x1000), Addr::new(0x8000)).unwrap();
        assert_eq!(info.confidence, cap, "alloc_info must report the shared cap");
        // And the seeded priority actually lands on the cap.
        let mut e = e;
        e.allocate(Cycle::ZERO, Addr::new(0x1000), Addr::new(0x8000));
        assert_eq!(e.buffers()[0].priority(), cap);
    }

    #[test]
    fn round_robin_rotates_ports_independently() {
        let mut config = SbConfig::sequential_baseline();
        config.buffers = 4;
        let cap = config.priority_max;
        let mut e = StreamEngine::new(config, SequentialPredictor::new(32, cap), "t".to_owned());
        for (i, base) in [0x10_0000u64, 0x20_0000, 0x30_0000, 0x40_0000].into_iter().enumerate() {
            e.allocate(Cycle::ZERO, Addr::new(0x1000 + i as u64 * 8), Addr::new(base));
        }
        let mut sink = TestSink::new(1);
        // Phase 1: bus blocked, so only the predict port arbitrates. The
        // cursor must visit every buffer once per lap, and the prefetch
        // cursor must not move.
        sink.bus_is_free = false;
        let mut predict_winners = Vec::new();
        for c in 0u64..16 {
            e.tick(Cycle::new(c), &mut sink);
            if c < 4 {
                predict_winners.push(e.rr_predict);
            }
            assert_eq!(e.rr_prefetch, 0, "prefetch cursor must not move on a blocked bus");
        }
        assert_eq!(predict_winners, vec![1, 2, 3, 0], "predict port must rotate fairly");
        // 16 predictions filled all 4x4 entries: the predict port idles.
        let predict_cursor = e.rr_predict;
        // Phase 2: bus free — the prefetch port now rotates on its own
        // cursor while the starved predict port stays put.
        sink.bus_is_free = true;
        let mut prefetch_winners = Vec::new();
        for c in 16u64..20 {
            e.tick(Cycle::new(c), &mut sink);
            prefetch_winners.push(e.rr_prefetch);
            assert_eq!(e.rr_predict, predict_cursor, "idle predict port must not advance");
        }
        assert_eq!(prefetch_winners, vec![1, 2, 3, 0], "prefetch port must rotate fairly");
    }

    #[test]
    fn priority_scheduler_breaks_ties_least_recently_serviced() {
        let mut config = SbConfig::sequential_baseline().with_scheduler(Scheduler::Priority);
        config.buffers = 3;
        let mut e = StreamEngine::new(config, SequentialPredictor::new(32, 3), "t".to_owned());
        for (i, base) in [0x10_0000u64, 0x20_0000, 0x30_0000].into_iter().enumerate() {
            e.allocate(Cycle::ZERO, Addr::new(0x1000 + i as u64 * 8), Addr::new(base));
        }
        let mut sink = TestSink::new(1);
        sink.bus_is_free = false;
        // All three buffers sit at priority 3: the tie-break must hand the
        // predictor to whichever was serviced longest ago, producing a
        // fair rotation rather than starving the low-index buffers.
        let mut winners = Vec::new();
        for c in 0u64..6 {
            e.tick(Cycle::new(c), &mut sink);
            winners.push(e.rr_predict);
        }
        assert_eq!(winners, vec![2, 1, 0, 2, 1, 0], "equal priorities must rotate LRU");
        // A priority edge overrides recency: the freshly rewarded buffer
        // wins even though it was serviced most recently.
        e.buffers[0].reward(2);
        e.tick(Cycle::new(6), &mut sink);
        e.tick(Cycle::new(7), &mut sink);
        assert_eq!(e.rr_predict, 0, "higher priority must beat the LRU tie-break");
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(
            PsbPrefetcher::psb(SbConfig::psb_conf_priority()).name(),
            "psb-confalloc-priority"
        );
        assert_eq!(PsbPrefetcher::psb(SbConfig::psb_two_miss_rr()).name(), "psb-2miss-rr");
        assert_eq!(StrideStreamBuffers::pc_stride().name(), "pc-stride");
        assert_eq!(SequentialStreamBuffers::sequential().name(), "sequential");
    }
}
