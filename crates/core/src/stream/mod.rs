//! Stream buffers and the predictor-directed prefetch engine.

mod buffer;
mod config;
mod engine;

pub use buffer::{SbEntry, StreamBuffer};
pub use config::{AllocFilter, SbConfig, Scheduler};
pub use engine::{PsbPrefetcher, SequentialStreamBuffers, StreamEngine, StrideStreamBuffers};
