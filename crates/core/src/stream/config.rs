//! Stream-buffer configuration.

/// Stream-buffer allocation filtering policy (Section 4.3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AllocFilter {
    /// Allocate on every miss (Jouppi's original design).
    None,
    /// The two-miss filter: allocate only when the load "has two cache
    /// misses in a row" that the predictor handled — identical strides
    /// for PC-stride, correct predictions for SFM.
    TwoMiss,
    /// Confidence allocation: the load's accuracy confidence must reach
    /// the threshold *and* beat some buffer's priority counter.
    Confidence {
        /// Minimum accuracy confidence to contend for a buffer
        /// (the paper found 1 appropriate).
        threshold: u32,
    },
}

/// How buffers contend for the shared predictor port and the L1↔L2 bus
/// (Section 4.4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// "giving each buffer an equal chance at performing a prediction or
    /// prefetch" via rotating pointers.
    RoundRobin,
    /// Priority counters: highest counter first, LRU among ties.
    Priority,
}

/// Full configuration of a stream-buffer file.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SbConfig {
    /// Number of stream buffers (8 in the paper).
    pub buffers: usize,
    /// Entries (cache blocks) per buffer (4 in the paper).
    pub entries_per_buffer: usize,
    /// Cache block size in bytes.
    pub block: u64,
    /// Allocation filter.
    pub filter: AllocFilter,
    /// Port/bus scheduling policy.
    pub scheduler: Scheduler,
    /// Saturation ceiling of the per-buffer priority counter (12).
    pub priority_max: u32,
    /// Priority increment per stream-buffer hit (2).
    pub hit_bonus: u32,
    /// Decrement every buffer's priority by 1 after this many allocation
    /// requests, i.e. L1 misses that also missed the stream buffers (10).
    pub aging_period: u64,
}

impl SbConfig {
    fn paper_base(filter: AllocFilter, scheduler: Scheduler) -> Self {
        SbConfig {
            buffers: 8,
            entries_per_buffer: 4,
            block: 32,
            filter,
            scheduler,
            priority_max: 12,
            hit_bonus: 2,
            aging_period: 10,
        }
    }

    /// PSB with the two-miss filter and round-robin scheduling
    /// ("2Miss-RR").
    pub fn psb_two_miss_rr() -> Self {
        Self::paper_base(AllocFilter::TwoMiss, Scheduler::RoundRobin)
    }

    /// PSB with the two-miss filter and priority scheduling
    /// ("2Miss-Priority").
    pub fn psb_two_miss_priority() -> Self {
        Self::paper_base(AllocFilter::TwoMiss, Scheduler::Priority)
    }

    /// PSB with confidence allocation and round-robin scheduling
    /// ("ConfAlloc-RR").
    pub fn psb_conf_rr() -> Self {
        Self::paper_base(AllocFilter::Confidence { threshold: 1 }, Scheduler::RoundRobin)
    }

    /// PSB with confidence allocation and priority scheduling
    /// ("ConfAlloc-Priority") — the paper's best configuration.
    pub fn psb_conf_priority() -> Self {
        Self::paper_base(AllocFilter::Confidence { threshold: 1 }, Scheduler::Priority)
    }

    /// The PC-stride baseline of Farkas et al.: two-miss filtering,
    /// round-robin service.
    pub fn stride_baseline() -> Self {
        Self::paper_base(AllocFilter::TwoMiss, Scheduler::RoundRobin)
    }

    /// Jouppi-style sequential stream buffers: no filter, round-robin.
    pub fn sequential_baseline() -> Self {
        Self::paper_base(AllocFilter::None, Scheduler::RoundRobin)
    }

    /// Replaces the allocation filter.
    pub fn with_filter(mut self, filter: AllocFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Replaces the scheduler.
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let c = SbConfig::psb_conf_priority();
        assert_eq!(c.buffers, 8);
        assert_eq!(c.entries_per_buffer, 4);
        assert_eq!(c.block, 32);
        assert_eq!(c.priority_max, 12);
        assert_eq!(c.hit_bonus, 2);
        assert_eq!(c.aging_period, 10);
        assert_eq!(c.filter, AllocFilter::Confidence { threshold: 1 });
        assert_eq!(c.scheduler, Scheduler::Priority);
    }

    #[test]
    fn four_paper_variants_differ_only_in_policy() {
        let a = SbConfig::psb_two_miss_rr();
        let b = SbConfig::psb_two_miss_priority();
        let c = SbConfig::psb_conf_rr();
        let d = SbConfig::psb_conf_priority();
        assert_eq!(a.filter, AllocFilter::TwoMiss);
        assert_eq!(a.scheduler, Scheduler::RoundRobin);
        assert_eq!(b.scheduler, Scheduler::Priority);
        assert_eq!(c.filter, AllocFilter::Confidence { threshold: 1 });
        assert_eq!(d.buffers, a.buffers);
    }

    #[test]
    fn builders_compose() {
        let c = SbConfig::stride_baseline()
            .with_filter(AllocFilter::None)
            .with_scheduler(Scheduler::Priority);
        assert_eq!(c.filter, AllocFilter::None);
        assert_eq!(c.scheduler, Scheduler::Priority);
    }
}
