//! A single stream buffer.
//!
//! The entry file is arena-flattened: instead of a `Vec<SbEntry>` enum
//! array that every hot-path query scans, the buffer keeps per-slot
//! block numbers and fill times in flat arrays and tracks each slot's
//! lifecycle stage in three bitmasks (`allocated`, `in_flight`,
//! `ready`; empty is the complement). Queries the engine issues every
//! cycle — "is there a free slot", "is there a pending prefetch",
//! "which slot holds block B" — collapse to mask tests and
//! `trailing_zeros`, with no branches over enum discriminants.
//! [`SbEntry`] remains the public *view* type; [`StreamBuffer::entry`]
//! reconstructs it on demand and [`StreamBuffer::entries`] materializes
//! the whole file for cold paths (auditing, tracing, tests).

use crate::predictor::StreamState;
use psb_common::{Addr, BlockAddr, Cycle, SatCounter};

/// The lifecycle of one stream-buffer entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SbEntry {
    /// Free: the next prediction may fill it.
    Empty,
    /// Holds a predicted block, "marked as ready for prefetching" but not
    /// yet sent to memory.
    Allocated {
        /// The predicted cache block.
        block: BlockAddr,
    },
    /// Prefetch sent; data arrives at `ready`.
    InFlight {
        /// The prefetched cache block.
        block: BlockAddr,
        /// Fill completion cycle.
        ready: Cycle,
    },
    /// Data resident in the buffer, waiting for a lookup.
    Ready {
        /// The resident cache block.
        block: BlockAddr,
    },
}

impl SbEntry {
    /// The block this entry tracks, if any.
    pub fn block(&self) -> Option<BlockAddr> {
        match *self {
            SbEntry::Empty => None,
            SbEntry::Allocated { block }
            | SbEntry::InFlight { block, .. }
            | SbEntry::Ready { block } => Some(block),
        }
    }

    /// True for [`SbEntry::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, SbEntry::Empty)
    }
}

/// One stream buffer: a handful of entries plus the per-stream history
/// that feeds the shared address predictor.
///
/// "Each stream buffer holds (1) the PC of the load that caused the
/// stream buffer to be allocated, (2) the last predicted address for the
/// load, and (3) any additional prediction information (e.g., history
/// state or confidence) needed to perform the next address prediction."
#[derive(Clone, Debug)]
pub struct StreamBuffer {
    /// Whether the buffer currently follows a stream.
    active: bool,
    /// The per-stream prediction state.
    state: StreamState,
    /// The priority counter used for scheduling and allocation decisions.
    priority: SatCounter,
    /// Per-slot block number (meaningful when the slot is non-empty).
    blocks: Box<[u64]>,
    /// Per-slot fill-completion cycle (meaningful when in flight).
    fill_at: Box<[u64]>,
    /// Bit `i` set: slot `i` holds a prediction awaiting its prefetch.
    allocated: u64,
    /// Bit `i` set: slot `i`'s prefetch is in flight.
    in_flight: u64,
    /// Bit `i` set: slot `i` holds resident data awaiting a lookup.
    ready: u64,
    /// All `entries` low bits set; empty slots are `all & !occupied()`.
    all: u64,
    /// Stamp of the last lookup hit or allocation (for LRU victim choice).
    last_touch: u64,
    /// Stamp of the last (re)allocation (for FIFO victim choice).
    last_alloc: u64,
    /// Stamp of the last time this buffer won a port (for LRU scheduling
    /// tie-breaks).
    last_service: u64,
}

impl StreamBuffer {
    /// Creates an inactive buffer with `entries` slots and a priority
    /// counter saturating at `priority_max`.
    pub fn new(entries: usize, priority_max: u32) -> Self {
        assert!(entries > 0, "a stream buffer needs at least one entry");
        assert!(entries <= 64, "the flattened entry file tracks at most 64 slots per buffer");
        StreamBuffer {
            active: false,
            state: StreamState::new(Addr::new(0), Addr::new(0), 0),
            priority: SatCounter::new(priority_max),
            blocks: vec![0; entries].into_boxed_slice(),
            fill_at: vec![0; entries].into_boxed_slice(),
            allocated: 0,
            in_flight: 0,
            ready: 0,
            all: if entries == 64 { u64::MAX } else { (1u64 << entries) - 1 },
            last_touch: 0,
            last_alloc: 0,
            last_service: 0,
        }
    }

    /// Bitmask of slots in any non-empty state.
    #[inline]
    fn occupied(&self) -> u64 {
        self.allocated | self.in_flight | self.ready
    }

    /// (Re)allocates the buffer to a new stream: clears all entries, sets
    /// the stream state and seeds the priority counter with the load's
    /// accuracy confidence ("when a stream buffer is allocated, the
    /// accuracy confidence is copied into the stream buffer's priority
    /// counter").
    pub fn reallocate(&mut self, pc: Addr, addr: Addr, stride: i64, confidence: u32, stamp: u64) {
        self.active = true;
        self.state = StreamState::new(pc, addr, stride);
        self.priority.set(confidence);
        self.allocated = 0;
        self.in_flight = 0;
        self.ready = 0;
        self.last_touch = stamp;
        self.last_alloc = stamp;
    }

    /// Whether the buffer follows a stream.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The per-stream prediction state (mutable: the predictor advances
    /// it).
    pub fn state_mut(&mut self) -> &mut StreamState {
        &mut self.state
    }

    /// The per-stream prediction state.
    pub fn state(&self) -> &StreamState {
        &self.state
    }

    /// Current priority counter value.
    pub fn priority(&self) -> u32 {
        self.priority.get()
    }

    /// Bumps priority by the per-hit bonus.
    pub fn reward(&mut self, bonus: u32) {
        self.priority.inc_by(bonus);
    }

    /// Ages the priority counter by one.
    pub fn age(&mut self) {
        self.priority.dec();
    }

    /// Stamp of the most recent hit/allocation.
    pub fn last_touch(&self) -> u64 {
        self.last_touch
    }

    /// Stamp of the most recent (re)allocation.
    pub fn last_alloc(&self) -> u64 {
        self.last_alloc
    }

    /// Records a touch (hit) at `stamp`.
    pub fn touch(&mut self, stamp: u64) {
        self.last_touch = stamp;
    }

    /// Stamp of the most recent port grant.
    pub fn last_service(&self) -> u64 {
        self.last_service
    }

    /// Records a port grant at `stamp`.
    pub fn serviced(&mut self, stamp: u64) {
        self.last_service = stamp;
    }

    /// Reconstructs the lifecycle view of slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn entry(&self, idx: usize) -> SbEntry {
        assert!(idx < self.blocks.len(), "entry index {idx} out of range");
        let bit = 1u64 << idx;
        let block = BlockAddr(self.blocks[idx]);
        if self.ready & bit != 0 {
            SbEntry::Ready { block }
        } else if self.in_flight & bit != 0 {
            SbEntry::InFlight { block, ready: Cycle::new(self.fill_at[idx]) }
        } else if self.allocated & bit != 0 {
            SbEntry::Allocated { block }
        } else {
            SbEntry::Empty
        }
    }

    /// Materializes the whole entry file as lifecycle views — a cold
    /// path for auditing, tracing and tests; hot paths use the bitmask
    /// accessors instead.
    pub fn entries(&self) -> Vec<SbEntry> {
        (0..self.blocks.len()).map(|i| self.entry(i)).collect()
    }

    /// Number of entry slots.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the buffer has no entry slots (never: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block slot `idx` tracks (meaningful only for non-empty slots).
    #[inline]
    pub fn block_at(&self, idx: usize) -> BlockAddr {
        BlockAddr(self.blocks[idx])
    }

    /// Fill-completion cycle of slot `idx` (meaningful only in flight).
    #[inline]
    pub fn fill_ready_at(&self, idx: usize) -> Cycle {
        Cycle::new(self.fill_at[idx])
    }

    /// True if slot `idx` holds resident (ready) data.
    #[inline]
    pub fn is_ready(&self, idx: usize) -> bool {
        self.ready & (1u64 << idx) != 0
    }

    /// True if slot `idx` has a prefetch in flight.
    #[inline]
    pub fn is_in_flight(&self, idx: usize) -> bool {
        self.in_flight & (1u64 << idx) != 0
    }

    /// True if slot `idx` holds a not-yet-prefetched prediction.
    #[inline]
    pub fn is_allocated(&self, idx: usize) -> bool {
        self.allocated & (1u64 << idx) != 0
    }

    /// Count of slots holding fetched-but-unused data (in flight or
    /// ready) — the entries that die as "evicted unused" on reallocation.
    pub fn fetched_unused(&self) -> u32 {
        (self.in_flight | self.ready).count_ones()
    }

    /// Index of the first empty entry, if any.
    #[inline]
    pub fn first_empty(&self) -> Option<usize> {
        let empty = self.all & !self.occupied();
        (empty != 0).then(|| empty.trailing_zeros() as usize)
    }

    /// Index of the first entry awaiting a prefetch, if any.
    #[inline]
    pub fn first_allocated(&self) -> Option<usize> {
        (self.allocated != 0).then(|| self.allocated.trailing_zeros() as usize)
    }

    /// True if the buffer can accept a new prediction.
    #[inline]
    pub fn can_predict(&self) -> bool {
        self.active && self.occupied() != self.all
    }

    /// True if the buffer has a prediction waiting to be prefetched.
    #[inline]
    pub fn can_prefetch(&self) -> bool {
        self.active && self.allocated != 0
    }

    /// True if the buffer has neither a free slot to predict into nor a
    /// pending prefetch — nothing for the per-cycle ports to do.
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        !self.can_predict() && !self.can_prefetch()
    }

    /// Finds the entry holding `block`, if any.
    #[inline]
    pub fn find(&self, block: BlockAddr) -> Option<usize> {
        let mut occ = self.occupied();
        while occ != 0 {
            let idx = occ.trailing_zeros() as usize;
            if self.blocks[idx] == block.0 {
                return Some(idx);
            }
            occ &= occ - 1;
        }
        None
    }

    /// Overwrites entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_entry(&mut self, idx: usize, entry: SbEntry) {
        assert!(idx < self.blocks.len(), "entry index {idx} out of range");
        let bit = 1u64 << idx;
        self.allocated &= !bit;
        self.in_flight &= !bit;
        self.ready &= !bit;
        match entry {
            SbEntry::Empty => {}
            SbEntry::Allocated { block } => {
                self.blocks[idx] = block.0;
                self.allocated |= bit;
            }
            SbEntry::InFlight { block, ready } => {
                self.blocks[idx] = block.0;
                self.fill_at[idx] = ready.raw();
                self.in_flight |= bit;
            }
            SbEntry::Ready { block } => {
                self.blocks[idx] = block.0;
                self.ready |= bit;
            }
        }
    }

    /// Converts in-flight entries whose data has arrived by `now` into
    /// ready entries. Returns the number of entries promoted.
    pub fn promote_arrived(&mut self, now: Cycle) -> u32 {
        let mut pending = self.in_flight;
        let mut promoted = 0;
        while pending != 0 {
            let idx = pending.trailing_zeros() as usize;
            let bit = 1u64 << idx;
            if self.fill_at[idx] <= now.raw() {
                self.in_flight &= !bit;
                self.ready |= bit;
                promoted += 1;
            }
            pending &= pending - 1;
        }
        promoted
    }

    /// True if any prefetch is currently in flight (used to skip the
    /// per-cycle promotion scan for idle buffers).
    #[inline]
    pub fn has_in_flight(&self) -> bool {
        self.in_flight != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> StreamBuffer {
        StreamBuffer::new(4, 12)
    }

    #[test]
    fn starts_inactive_and_empty() {
        let b = buf();
        assert!(!b.is_active());
        assert!(!b.can_predict());
        assert!(!b.can_prefetch());
        assert_eq!(b.first_empty(), Some(0));
    }

    #[test]
    fn reallocate_seeds_priority_from_confidence() {
        let mut b = buf();
        b.reallocate(Addr::new(0x100), Addr::new(0x8000), 64, 5, 7);
        assert!(b.is_active());
        assert_eq!(b.priority(), 5);
        assert_eq!(b.state().pc, Addr::new(0x100));
        assert_eq!(b.state().last_addr, Addr::new(0x8000));
        assert_eq!(b.state().stride, 64);
        assert_eq!(b.last_touch(), 7);
        assert!(b.can_predict());
    }

    #[test]
    fn entry_lifecycle() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        let blk = BlockAddr(0x40);
        let idx = b.first_empty().unwrap();
        b.set_entry(idx, SbEntry::Allocated { block: blk });
        assert!(b.can_prefetch());
        assert_eq!(b.find(blk), Some(idx));

        b.set_entry(idx, SbEntry::InFlight { block: blk, ready: Cycle::new(100) });
        assert!(!b.can_prefetch());
        assert_eq!(b.promote_arrived(Cycle::new(99)), 0);
        assert!(matches!(b.entries()[idx], SbEntry::InFlight { .. }));
        assert_eq!(b.promote_arrived(Cycle::new(100)), 1);
        assert_eq!(b.entries()[idx], SbEntry::Ready { block: blk });

        b.set_entry(idx, SbEntry::Empty);
        assert!(b.can_predict());
    }

    #[test]
    fn full_buffer_stops_predicting() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        for i in 0..4 {
            let idx = b.first_empty().unwrap();
            b.set_entry(idx, SbEntry::Allocated { block: BlockAddr(i as u64) });
        }
        assert!(!b.can_predict(), "all entries predicted: no more until a hit or realloc");
        assert!(b.can_prefetch());
    }

    #[test]
    fn reward_and_age_saturate() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 11, 0);
        b.reward(2);
        assert_eq!(b.priority(), 12, "saturates at 12");
        for _ in 0..20 {
            b.age();
        }
        assert_eq!(b.priority(), 0);
    }

    #[test]
    fn reallocate_clears_entries() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        b.set_entry(0, SbEntry::Ready { block: BlockAddr(9) });
        b.reallocate(Addr::new(4), Addr::new(0x100), -32, 3, 1);
        assert!(b.entries().iter().all(SbEntry::is_empty));
        assert_eq!(b.find(BlockAddr(9)), None);
    }

    #[test]
    fn entry_block_accessor() {
        assert_eq!(SbEntry::Empty.block(), None);
        assert_eq!(SbEntry::Allocated { block: BlockAddr(3) }.block(), Some(BlockAddr(3)));
        assert_eq!(
            SbEntry::InFlight { block: BlockAddr(4), ready: Cycle::ZERO }.block(),
            Some(BlockAddr(4))
        );
        assert_eq!(SbEntry::Ready { block: BlockAddr(5) }.block(), Some(BlockAddr(5)));
    }

    #[test]
    fn mask_accessors_mirror_entry_views() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        b.set_entry(0, SbEntry::Allocated { block: BlockAddr(10) });
        b.set_entry(1, SbEntry::InFlight { block: BlockAddr(11), ready: Cycle::new(50) });
        b.set_entry(2, SbEntry::Ready { block: BlockAddr(12) });
        assert!(b.is_allocated(0) && !b.is_in_flight(0) && !b.is_ready(0));
        assert!(b.is_in_flight(1) && b.has_in_flight());
        assert!(b.is_ready(2));
        assert_eq!(b.block_at(1), BlockAddr(11));
        assert_eq!(b.fill_ready_at(1), Cycle::new(50));
        assert_eq!(b.fetched_unused(), 2);
        assert_eq!(b.first_empty(), Some(3));
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        for i in 0..4 {
            assert_eq!(b.entry(i), b.entries()[i]);
        }
    }

    #[test]
    fn quiescence_tracks_port_work() {
        let mut b = buf();
        assert!(b.is_quiescent(), "inactive buffers are quiescent");
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        assert!(!b.is_quiescent(), "empty slots invite predictions");
        for i in 0..4u64 {
            let idx = b.first_empty().unwrap();
            b.set_entry(idx, SbEntry::InFlight { block: BlockAddr(i), ready: Cycle::new(9) });
        }
        assert!(b.is_quiescent(), "all slots in flight: nothing for the ports");
        b.promote_arrived(Cycle::new(9));
        assert!(b.is_quiescent(), "ready slots wait on lookups, not ports");
        b.set_entry(0, SbEntry::Empty);
        assert!(!b.is_quiescent(), "a freed slot reopens the predict port");
    }

    #[test]
    fn sixty_four_entry_buffer_masks_work() {
        let mut b = StreamBuffer::new(64, 7);
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        for i in 0..64u64 {
            let idx = b.first_empty().unwrap();
            assert_eq!(idx as u64, i);
            b.set_entry(idx, SbEntry::Allocated { block: BlockAddr(1000 + i) });
        }
        assert!(!b.can_predict());
        assert_eq!(b.find(BlockAddr(1063)), Some(63));
        assert_eq!(b.first_allocated(), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        StreamBuffer::new(0, 12);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_entry_file_panics() {
        StreamBuffer::new(65, 12);
    }

    #[test]
    fn single_entry_buffer_works() {
        let mut b = StreamBuffer::new(1, 3);
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        b.set_entry(0, SbEntry::Allocated { block: BlockAddr(7) });
        assert_eq!(b.find(BlockAddr(7)), Some(0));
        assert!(b.first_empty().is_none());
    }

    #[test]
    fn fresh_buffer_has_zeroed_scheduling_stamps() {
        // 0 is the "never" stamp: schedulers compare it against real
        // stamps, which start at 1.
        let b = buf();
        assert_eq!(b.last_touch(), 0);
        assert_eq!(b.last_alloc(), 0);
        assert_eq!(b.last_service(), 0);
    }

    #[test]
    #[should_panic(expected = "entry index 4 out of range")]
    fn entry_out_of_range_panics() {
        buf().entry(4);
    }

    #[test]
    #[should_panic(expected = "entry index 4 out of range")]
    fn set_entry_out_of_range_panics() {
        buf().set_entry(4, SbEntry::Empty);
    }

    #[test]
    fn slot_state_predicates_address_the_right_bit() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        b.set_entry(2, SbEntry::Allocated { block: BlockAddr(5) });
        assert!(b.is_allocated(2) && !b.is_allocated(0));
        b.set_entry(0, SbEntry::InFlight { block: BlockAddr(6), ready: Cycle::new(9) });
        assert!(b.has_in_flight());
        assert!(b.is_in_flight(0) && !b.is_in_flight(2));
    }
}
