//! A single stream buffer.

use crate::predictor::StreamState;
use psb_common::{Addr, BlockAddr, Cycle, SatCounter};

/// The lifecycle of one stream-buffer entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SbEntry {
    /// Free: the next prediction may fill it.
    Empty,
    /// Holds a predicted block, "marked as ready for prefetching" but not
    /// yet sent to memory.
    Allocated {
        /// The predicted cache block.
        block: BlockAddr,
    },
    /// Prefetch sent; data arrives at `ready`.
    InFlight {
        /// The prefetched cache block.
        block: BlockAddr,
        /// Fill completion cycle.
        ready: Cycle,
    },
    /// Data resident in the buffer, waiting for a lookup.
    Ready {
        /// The resident cache block.
        block: BlockAddr,
    },
}

impl SbEntry {
    /// The block this entry tracks, if any.
    pub fn block(&self) -> Option<BlockAddr> {
        match *self {
            SbEntry::Empty => None,
            SbEntry::Allocated { block }
            | SbEntry::InFlight { block, .. }
            | SbEntry::Ready { block } => Some(block),
        }
    }

    /// True for [`SbEntry::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, SbEntry::Empty)
    }
}

/// One stream buffer: a handful of entries plus the per-stream history
/// that feeds the shared address predictor.
///
/// "Each stream buffer holds (1) the PC of the load that caused the
/// stream buffer to be allocated, (2) the last predicted address for the
/// load, and (3) any additional prediction information (e.g., history
/// state or confidence) needed to perform the next address prediction."
#[derive(Clone, Debug)]
pub struct StreamBuffer {
    /// Whether the buffer currently follows a stream.
    active: bool,
    /// The per-stream prediction state.
    state: StreamState,
    /// The priority counter used for scheduling and allocation decisions.
    priority: SatCounter,
    entries: Vec<SbEntry>,
    /// Stamp of the last lookup hit or allocation (for LRU victim choice).
    last_touch: u64,
    /// Stamp of the last (re)allocation (for FIFO victim choice).
    last_alloc: u64,
    /// Stamp of the last time this buffer won a port (for LRU scheduling
    /// tie-breaks).
    last_service: u64,
}

impl StreamBuffer {
    /// Creates an inactive buffer with `entries` slots and a priority
    /// counter saturating at `priority_max`.
    pub fn new(entries: usize, priority_max: u32) -> Self {
        assert!(entries > 0, "a stream buffer needs at least one entry");
        StreamBuffer {
            active: false,
            state: StreamState::new(Addr::new(0), Addr::new(0), 0),
            priority: SatCounter::new(priority_max),
            entries: vec![SbEntry::Empty; entries],
            last_touch: 0,
            last_alloc: 0,
            last_service: 0,
        }
    }

    /// (Re)allocates the buffer to a new stream: clears all entries, sets
    /// the stream state and seeds the priority counter with the load's
    /// accuracy confidence ("when a stream buffer is allocated, the
    /// accuracy confidence is copied into the stream buffer's priority
    /// counter").
    pub fn reallocate(&mut self, pc: Addr, addr: Addr, stride: i64, confidence: u32, stamp: u64) {
        self.active = true;
        self.state = StreamState::new(pc, addr, stride);
        self.priority.set(confidence);
        self.entries.fill(SbEntry::Empty);
        self.last_touch = stamp;
        self.last_alloc = stamp;
    }

    /// Whether the buffer follows a stream.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The per-stream prediction state (mutable: the predictor advances
    /// it).
    pub fn state_mut(&mut self) -> &mut StreamState {
        &mut self.state
    }

    /// The per-stream prediction state.
    pub fn state(&self) -> &StreamState {
        &self.state
    }

    /// Current priority counter value.
    pub fn priority(&self) -> u32 {
        self.priority.get()
    }

    /// Bumps priority by the per-hit bonus.
    pub fn reward(&mut self, bonus: u32) {
        self.priority.inc_by(bonus);
    }

    /// Ages the priority counter by one.
    pub fn age(&mut self) {
        self.priority.dec();
    }

    /// Stamp of the most recent hit/allocation.
    pub fn last_touch(&self) -> u64 {
        self.last_touch
    }

    /// Stamp of the most recent (re)allocation.
    pub fn last_alloc(&self) -> u64 {
        self.last_alloc
    }

    /// Records a touch (hit) at `stamp`.
    pub fn touch(&mut self, stamp: u64) {
        self.last_touch = stamp;
    }

    /// Stamp of the most recent port grant.
    pub fn last_service(&self) -> u64 {
        self.last_service
    }

    /// Records a port grant at `stamp`.
    pub fn serviced(&mut self, stamp: u64) {
        self.last_service = stamp;
    }

    /// The entries.
    pub fn entries(&self) -> &[SbEntry] {
        &self.entries
    }

    /// Index of the first empty entry, if any.
    pub fn first_empty(&self) -> Option<usize> {
        self.entries.iter().position(SbEntry::is_empty)
    }

    /// Index of the first entry awaiting a prefetch, if any.
    pub fn first_allocated(&self) -> Option<usize> {
        self.entries.iter().position(|e| matches!(e, SbEntry::Allocated { .. }))
    }

    /// True if the buffer can accept a new prediction.
    pub fn can_predict(&self) -> bool {
        self.active && self.first_empty().is_some()
    }

    /// True if the buffer has a prediction waiting to be prefetched.
    pub fn can_prefetch(&self) -> bool {
        self.active && self.first_allocated().is_some()
    }

    /// Finds the entry holding `block`, if any.
    pub fn find(&self, block: BlockAddr) -> Option<usize> {
        self.entries.iter().position(|e| e.block() == Some(block))
    }

    /// Overwrites entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_entry(&mut self, idx: usize, entry: SbEntry) {
        self.entries[idx] = entry;
    }

    /// Converts in-flight entries whose data has arrived by `now` into
    /// ready entries. Returns the number of entries promoted.
    pub fn promote_arrived(&mut self, now: Cycle) -> u32 {
        let mut promoted = 0;
        for e in &mut self.entries {
            if let SbEntry::InFlight { block, ready } = *e {
                if ready <= now {
                    *e = SbEntry::Ready { block };
                    promoted += 1;
                }
            }
        }
        promoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> StreamBuffer {
        StreamBuffer::new(4, 12)
    }

    #[test]
    fn starts_inactive_and_empty() {
        let b = buf();
        assert!(!b.is_active());
        assert!(!b.can_predict());
        assert!(!b.can_prefetch());
        assert_eq!(b.first_empty(), Some(0));
    }

    #[test]
    fn reallocate_seeds_priority_from_confidence() {
        let mut b = buf();
        b.reallocate(Addr::new(0x100), Addr::new(0x8000), 64, 5, 7);
        assert!(b.is_active());
        assert_eq!(b.priority(), 5);
        assert_eq!(b.state().pc, Addr::new(0x100));
        assert_eq!(b.state().last_addr, Addr::new(0x8000));
        assert_eq!(b.state().stride, 64);
        assert_eq!(b.last_touch(), 7);
        assert!(b.can_predict());
    }

    #[test]
    fn entry_lifecycle() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        let blk = BlockAddr(0x40);
        let idx = b.first_empty().unwrap();
        b.set_entry(idx, SbEntry::Allocated { block: blk });
        assert!(b.can_prefetch());
        assert_eq!(b.find(blk), Some(idx));

        b.set_entry(idx, SbEntry::InFlight { block: blk, ready: Cycle::new(100) });
        assert!(!b.can_prefetch());
        assert_eq!(b.promote_arrived(Cycle::new(99)), 0);
        assert!(matches!(b.entries()[idx], SbEntry::InFlight { .. }));
        assert_eq!(b.promote_arrived(Cycle::new(100)), 1);
        assert_eq!(b.entries()[idx], SbEntry::Ready { block: blk });

        b.set_entry(idx, SbEntry::Empty);
        assert!(b.can_predict());
    }

    #[test]
    fn full_buffer_stops_predicting() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        for i in 0..4 {
            let idx = b.first_empty().unwrap();
            b.set_entry(idx, SbEntry::Allocated { block: BlockAddr(i as u64) });
        }
        assert!(!b.can_predict(), "all entries predicted: no more until a hit or realloc");
        assert!(b.can_prefetch());
    }

    #[test]
    fn reward_and_age_saturate() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 11, 0);
        b.reward(2);
        assert_eq!(b.priority(), 12, "saturates at 12");
        for _ in 0..20 {
            b.age();
        }
        assert_eq!(b.priority(), 0);
    }

    #[test]
    fn reallocate_clears_entries() {
        let mut b = buf();
        b.reallocate(Addr::new(0), Addr::new(0), 32, 0, 0);
        b.set_entry(0, SbEntry::Ready { block: BlockAddr(9) });
        b.reallocate(Addr::new(4), Addr::new(0x100), -32, 3, 1);
        assert!(b.entries().iter().all(SbEntry::is_empty));
        assert_eq!(b.find(BlockAddr(9)), None);
    }

    #[test]
    fn entry_block_accessor() {
        assert_eq!(SbEntry::Empty.block(), None);
        assert_eq!(SbEntry::Allocated { block: BlockAddr(3) }.block(), Some(BlockAddr(3)));
        assert_eq!(
            SbEntry::InFlight { block: BlockAddr(4), ready: Cycle::ZERO }.block(),
            Some(BlockAddr(4))
        );
        assert_eq!(SbEntry::Ready { block: BlockAddr(5) }.block(), Some(BlockAddr(5)));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        StreamBuffer::new(0, 12);
    }
}
