//! Demand-based prefetchers from the paper's Section 3 ("Hardware
//! Prefetching Models") — implemented as comparison points beyond the
//! paper's own figures.
//!
//! * [`NextLinePrefetcher`] — Smith's Next Line Prefetching: an access
//!   that misses (or hits a prefetched line for the first time) triggers
//!   a prefetch of the next sequential block.
//! * [`DemandMarkovPrefetcher`] — the Markov prefetcher of Joseph &
//!   Grunwald: a cache miss indexes a Markov table for the addresses
//!   that followed it before, prefetching up to `ways` successors into a
//!   prefetch buffer, then idling until the next miss ("They do not use
//!   the predicted addresses to re-index into the table"). Two-bit
//!   accuracy counters disable transitions that keep prefetching dead
//!   data.
//!
//! Both engines share the same [`Prefetcher`] interface as the stream
//! buffers, so the simulator can compare all models head-to-head.

use crate::prefetcher::{PrefetchSink, PrefetchStats, Prefetcher, SbLookup};
use psb_common::{Addr, BlockAddr, Cycle, SatCounter};
use std::collections::VecDeque;

/// One slot of a prefetch buffer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct PbEntry {
    pub(crate) block: BlockAddr,
    pub(crate) ready: Cycle,
    lru: u64,
}

/// A small fully-associative prefetch buffer with LRU replacement, as
/// used by the demand-based schemes (prefetched data is staged here, not
/// in the cache, to avoid pollution). Shared with the other demand-side
/// engines under `predictor/` (Pangloss, DSPatch).
#[derive(Clone, Debug)]
pub(crate) struct PrefetchBuffer {
    entries: Vec<PbEntry>,
    capacity: usize,
    stamp: u64,
}

impl PrefetchBuffer {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch buffer needs at least one entry");
        PrefetchBuffer { entries: Vec::with_capacity(capacity), capacity, stamp: 0 }
    }

    pub(crate) fn contains(&self, block: BlockAddr) -> bool {
        self.entries.iter().any(|e| e.block == block)
    }

    /// The configured number of slots (not the current occupancy).
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Removes and returns the entry for `block`, if present (a hit moves
    /// the block into the cache).
    pub(crate) fn take(&mut self, block: BlockAddr) -> Option<PbEntry> {
        let idx = self.entries.iter().position(|e| e.block == block)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Inserts a block; returns the evicted (unused) block, if any.
    pub(crate) fn insert(&mut self, block: BlockAddr, ready: Cycle) -> Option<BlockAddr> {
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            e.lru = self.stamp;
            return None;
        }
        let entry = PbEntry { block, ready, lru: self.stamp };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            None
        } else {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("invariant: capacity > 0 keeps the entry list non-empty");
            let evicted = std::mem::replace(&mut self.entries[victim], entry);
            Some(evicted.block)
        }
    }
}

/// Smith's Next Line Prefetching, staged through a prefetch buffer.
///
/// A demand miss queues a prefetch of the next sequential block; using a
/// prefetched block queues the block after it, so sequential walks chain.
///
/// # Example
///
/// ```
/// use psb_common::{Addr, Cycle};
/// use psb_core::{NextLinePrefetcher, Prefetcher, SbLookup, TestSink};
///
/// let mut nlp = NextLinePrefetcher::new(32, 16);
/// let mut sink = TestSink::new(1);
/// nlp.train(Cycle::ZERO, Addr::new(0x400), Addr::new(0x1000)); // miss
/// nlp.tick(Cycle::new(1), &mut sink);
/// // The next block was prefetched:
/// assert!(matches!(nlp.lookup(Cycle::new(5), Addr::new(0x1020)), SbLookup::Hit { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct NextLinePrefetcher {
    buffer: PrefetchBuffer,
    pending: VecDeque<BlockAddr>,
    block: u64,
    stats: PrefetchStats,
}

/// Block size of [`NextLinePrefetcher::baseline`], matching the
/// machine's 32-byte L1 lines.
pub const NEXT_LINE_BASELINE_BLOCK: u64 = 32;

/// Prefetch-buffer capacity of [`NextLinePrefetcher::baseline`]: the
/// 16-entry staging buffer used by the demand-based comparison points.
pub const NEXT_LINE_BASELINE_CAPACITY: usize = 16;

impl NextLinePrefetcher {
    /// The baseline configuration the registry builds: 32-byte blocks
    /// (the machine's L1 line size) staged through a 16-entry buffer,
    /// matching [`DemandMarkovPrefetcher::baseline`]'s buffer.
    pub fn baseline() -> Self {
        NextLinePrefetcher::new(NEXT_LINE_BASELINE_BLOCK, NEXT_LINE_BASELINE_CAPACITY)
    }

    /// Creates a next-line prefetcher for `block`-byte lines with a
    /// `capacity`-entry prefetch buffer.
    pub fn new(block: u64, capacity: usize) -> Self {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        NextLinePrefetcher {
            buffer: PrefetchBuffer::new(capacity),
            pending: VecDeque::new(),
            block,
            stats: PrefetchStats::default(),
        }
    }

    fn queue_next(&mut self, block: BlockAddr) {
        let next = block.offset(1);
        if !self.buffer.contains(next) && !self.pending.contains(&next) {
            self.pending.push_back(next);
        }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn lookup(&mut self, now: Cycle, addr: Addr) -> SbLookup {
        self.stats.lookups += 1;
        let block = addr.block(self.block);
        if let Some(e) = self.buffer.take(block) {
            self.stats.hits += 1;
            self.stats.used += 1;
            // Using a prefetched line chains the next one (the tag bit
            // flipping to zero in Smith's scheme).
            self.queue_next(block);
            SbLookup::Hit { ready: e.ready.max(now) }
        } else {
            SbLookup::Miss
        }
    }

    fn train(&mut self, _now: Cycle, _pc: Addr, addr: Addr) {
        // Every demand miss requests the next sequential block.
        self.queue_next(addr.block(self.block));
    }

    fn allocate(&mut self, _now: Cycle, _pc: Addr, _addr: Addr) {}

    fn tick(&mut self, now: Cycle, sink: &mut dyn PrefetchSink) {
        if !sink.bus_free(now) {
            return;
        }
        let Some(block) = self.pending.pop_front() else {
            return;
        };
        let ready = sink.fetch(now, block.base(self.block));
        self.buffer.insert(block, ready);
        self.stats.issued += 1;
    }

    fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn name(&self) -> &str {
        "next-line"
    }
}

/// One Markov-table entry: up to `W` successor blocks with accuracy
/// counters.
#[derive(Clone, Debug)]
struct DmEntry {
    tag: u64,
    successors: Vec<(BlockAddr, SatCounter)>,
    valid: bool,
}

/// The demand-based Markov prefetcher of Joseph & Grunwald.
///
/// On a cache miss, the miss address indexes a first-order Markov table
/// whose entries record the addresses that followed it before; the
/// enabled successors are prefetched into a buffer, and the engine idles
/// until the next miss. Per-successor two-bit counters implement their
/// "accuracy based adaptivity": a prefetch discarded unused increments
/// its counter, a used one decrements it, and a set sign bit disables
/// the transition (it keeps being trained so it can re-enable).
#[derive(Clone, Debug)]
pub struct DemandMarkovPrefetcher {
    table: Vec<DmEntry>,
    buffer: PrefetchBuffer,
    /// Where each buffered block came from, to credit accuracy:
    /// (prefetched block, table index, successor slot).
    provenance: Vec<(BlockAddr, usize, usize)>,
    pending: VecDeque<BlockAddr>,
    last_miss: Option<BlockAddr>,
    block: u64,
    ways: usize,
    stats: PrefetchStats,
}

impl DemandMarkovPrefetcher {
    /// A contemporary configuration: 1K-entry table, 2 successors per
    /// entry, 16-entry prefetch buffer, 32-byte blocks.
    pub fn baseline() -> Self {
        DemandMarkovPrefetcher::new(1024, 2, 16, 32)
    }

    /// Creates a prefetcher with `entries` table slots of `ways`
    /// successors, a `capacity`-entry buffer, over `block`-byte lines.
    pub fn new(entries: usize, ways: usize, capacity: usize, block: u64) -> Self {
        assert!(entries > 0 && ways > 0, "zero-sized Markov prefetcher");
        DemandMarkovPrefetcher {
            table: vec![DmEntry { tag: 0, successors: Vec::new(), valid: false }; entries],
            buffer: PrefetchBuffer::new(capacity),
            provenance: Vec::new(),
            pending: VecDeque::new(),
            last_miss: None,
            block,
            ways,
            stats: PrefetchStats::default(),
        }
    }

    fn index(&self, block: BlockAddr) -> (usize, u64) {
        let n = self.table.len() as u64;
        (((block.0 ^ (block.0 >> 11)) % n) as usize, block.0 / n)
    }

    fn credit(&mut self, block: BlockAddr, used: bool) {
        if let Some(pos) = self.provenance.iter().position(|(b, _, _)| *b == block) {
            let (_, idx, slot) = self.provenance.swap_remove(pos);
            if let Some((_, counter)) = self.table[idx].successors.get_mut(slot) {
                if used {
                    counter.dec();
                } else {
                    counter.inc();
                }
            }
        }
    }
}

impl Prefetcher for DemandMarkovPrefetcher {
    fn lookup(&mut self, now: Cycle, addr: Addr) -> SbLookup {
        self.stats.lookups += 1;
        let block = addr.block(self.block);
        if let Some(e) = self.buffer.take(block) {
            self.stats.hits += 1;
            self.stats.used += 1;
            self.credit(block, true);
            SbLookup::Hit { ready: e.ready.max(now) }
        } else {
            SbLookup::Miss
        }
    }

    fn train(&mut self, _now: Cycle, _pc: Addr, addr: Addr) {
        let block = addr.block(self.block);

        // Record the transition last_miss -> block.
        if let Some(prev) = self.last_miss {
            let (idx, tag) = self.index(prev);
            let e = &mut self.table[idx];
            if !e.valid || e.tag != tag {
                *e = DmEntry { tag, successors: Vec::new(), valid: true };
            }
            if let Some(pos) = e.successors.iter().position(|(b, _)| *b == block) {
                // Move to front (most recent successor first).
                let s = e.successors.remove(pos);
                e.successors.insert(0, s);
            } else {
                e.successors.insert(0, (block, SatCounter::new(3)));
                e.successors.truncate(self.ways);
            }
        }
        self.last_miss = Some(block);

        // Fan out prefetches for the enabled successors of this miss.
        let (idx, tag) = self.index(block);
        if self.table[idx].valid && self.table[idx].tag == tag {
            let candidates: Vec<BlockAddr> = self.table[idx]
                .successors
                .iter()
                .filter(|(_, c)| !c.is_high()) // sign bit clear = enabled
                .map(|(b, _)| *b)
                .collect();
            for next in candidates {
                if !self.buffer.contains(next) && !self.pending.contains(&next) {
                    self.pending.push_back(next);
                }
            }
        }
    }

    fn allocate(&mut self, _now: Cycle, _pc: Addr, _addr: Addr) {}

    fn tick(&mut self, now: Cycle, sink: &mut dyn PrefetchSink) {
        if !sink.bus_free(now) {
            return;
        }
        let Some(block) = self.pending.pop_front() else {
            return;
        };
        // Remember which transition produced this prefetch for crediting.
        let source = self.last_miss.and_then(|prev| {
            let (idx, tag) = self.index(prev);
            let e = &self.table[idx];
            (e.valid && e.tag == tag)
                .then(|| e.successors.iter().position(|(b, _)| *b == block).map(|s| (idx, s)))
                .flatten()
        });
        let ready = sink.fetch(now, block.base(self.block));
        if let Some(evicted) = self.buffer.insert(block, ready) {
            self.credit(evicted, false); // discarded without use
        }
        if let Some((idx, slot)) = source {
            self.provenance.push((block, idx, slot));
            if self.provenance.len() > 64 {
                self.provenance.remove(0);
            }
        }
        self.stats.issued += 1;
    }

    fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn name(&self) -> &str {
        "demand-markov"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::TestSink;

    fn drain(p: &mut dyn Prefetcher, sink: &mut TestSink, from: u64, cycles: u64) {
        for c in from..from + cycles {
            p.tick(Cycle::new(c), sink);
        }
    }

    #[test]
    fn nlp_chains_sequential_blocks() {
        let mut nlp = NextLinePrefetcher::new(32, 16);
        let mut sink = TestSink::new(1);
        nlp.train(Cycle::ZERO, Addr::new(0), Addr::new(0x1000));
        drain(&mut nlp, &mut sink, 1, 4);
        assert_eq!(sink.fetched, vec![Addr::new(0x1020)]);
        // Using the prefetched block chains the next one.
        assert!(matches!(nlp.lookup(Cycle::new(10), Addr::new(0x1020)), SbLookup::Hit { .. }));
        drain(&mut nlp, &mut sink, 11, 4);
        assert_eq!(sink.fetched.last(), Some(&Addr::new(0x1040)));
        assert_eq!(nlp.stats().used, 1);
    }

    #[test]
    fn nlp_respects_bus_gating() {
        let mut nlp = NextLinePrefetcher::new(32, 16);
        let mut sink = TestSink::new(1);
        sink.bus_is_free = false;
        nlp.train(Cycle::ZERO, Addr::new(0), Addr::new(0x2000));
        drain(&mut nlp, &mut sink, 1, 8);
        assert!(sink.fetched.is_empty());
        sink.bus_is_free = true;
        drain(&mut nlp, &mut sink, 9, 2);
        assert_eq!(nlp.stats().issued, 1);
    }

    #[test]
    fn nlp_misses_nonsequential() {
        let mut nlp = NextLinePrefetcher::new(32, 16);
        let mut sink = TestSink::new(1);
        nlp.train(Cycle::ZERO, Addr::new(0), Addr::new(0x1000));
        drain(&mut nlp, &mut sink, 1, 4);
        assert_eq!(nlp.lookup(Cycle::new(9), Addr::new(0x9000)), SbLookup::Miss);
    }

    #[test]
    fn demand_markov_replays_transitions() {
        let mut dm = DemandMarkovPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        let (a, b) = (Addr::new(0x10_0000), Addr::new(0x25_0040));
        // Teach A -> B.
        dm.train(Cycle::ZERO, Addr::new(0), a);
        dm.train(Cycle::ZERO, Addr::new(0), b);
        // Next miss on A prefetches B.
        dm.train(Cycle::new(10), Addr::new(0), a);
        drain(&mut dm, &mut sink, 11, 4);
        assert_eq!(sink.fetched, vec![b.block_base(32)]);
        assert!(matches!(dm.lookup(Cycle::new(20), b), SbLookup::Hit { .. }));
    }

    #[test]
    fn demand_markov_idles_between_misses() {
        let mut dm = DemandMarkovPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        // Blocks 128, 384 and 768: distinct table indices (no aliasing).
        let (a, b, c) = (Addr::new(0x1000), Addr::new(0x3000), Addr::new(0x6000));
        for _ in 0..2 {
            for x in [a, b, c] {
                dm.train(Cycle::ZERO, Addr::new(0), x);
            }
        }
        // Flush any prefetches queued during training.
        drain(&mut dm, &mut sink, 1, 20);
        sink.fetched.clear();
        // Miss on A: B (A's successor) is available — but there is no
        // chaining to C without a further miss.
        dm.train(Cycle::new(50), Addr::new(0), a);
        drain(&mut dm, &mut sink, 51, 10);
        assert!(matches!(dm.lookup(Cycle::new(70), b), SbLookup::Hit { .. }));
        assert!(
            !sink.fetched.contains(&c.block_base(32)),
            "no chained prefetch of C: {:?}",
            sink.fetched
        );
    }

    #[test]
    fn demand_markov_tracks_multiple_successors() {
        let mut dm = DemandMarkovPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        let a = Addr::new(0x1000);
        // A is followed by B sometimes and C other times (non-aliasing
        // table slots).
        for succ in [0x3000u64, 0x6000, 0x3000, 0x6000] {
            dm.train(Cycle::ZERO, Addr::new(0), a);
            dm.train(Cycle::ZERO, Addr::new(0), Addr::new(succ));
        }
        drain(&mut dm, &mut sink, 1, 20);
        dm.train(Cycle::new(90), Addr::new(0), a);
        drain(&mut dm, &mut sink, 91, 10);
        // Both recorded successors of A are now staged in the buffer.
        assert!(matches!(dm.lookup(Cycle::new(110), Addr::new(0x3000)), SbLookup::Hit { .. }));
        assert!(matches!(dm.lookup(Cycle::new(111), Addr::new(0x6000)), SbLookup::Hit { .. }));
    }

    #[test]
    fn demand_markov_adaptivity_disables_dead_transitions() {
        let mut dm = DemandMarkovPrefetcher::new(1024, 1, 2, 32);
        let mut sink = TestSink::new(1);
        let a = Addr::new(0x1000);
        let dead = Addr::new(0x5000);
        dm.train(Cycle::ZERO, Addr::new(0), a);
        dm.train(Cycle::ZERO, Addr::new(0), dead);
        // Repeatedly prefetch `dead` without using it; evictions from the
        // tiny buffer increment its counter until it is disabled.
        let mut now = 10;
        for i in 0..6u64 {
            dm.train(Cycle::new(now), Addr::new(0), a);
            drain(&mut dm, &mut sink, now + 1, 3);
            // Force eviction by filling the 2-entry buffer with other
            // misses' prefetches.
            dm.train(Cycle::new(now + 4), Addr::new(0), Addr::new(0x8000 + i * 0x40));
            dm.train(Cycle::new(now + 5), Addr::new(0), Addr::new(0x9000 + i * 0x40));
            drain(&mut dm, &mut sink, now + 6, 4);
            now += 20;
        }
        let before = sink.fetched.len();
        dm.train(Cycle::new(now), Addr::new(0), a);
        drain(&mut dm, &mut sink, now + 1, 3);
        let new: Vec<&Addr> = sink.fetched[before..].iter().collect();
        assert!(
            !new.contains(&&dead.block_base(32)),
            "disabled transition must stop prefetching: {new:?}"
        );
    }

    #[test]
    fn nlp_baseline_pins_block_and_capacity() {
        // The registry's next-line row must keep building the historical
        // configuration: 32-byte blocks, 16-entry buffer. (These used to
        // be magic numbers inlined at the `PrefetcherKind::build` call
        // site — the same bug class as PR 4's stray priority cap.)
        assert_eq!(NEXT_LINE_BASELINE_BLOCK, 32);
        assert_eq!(NEXT_LINE_BASELINE_CAPACITY, 16);
        let nlp = NextLinePrefetcher::baseline();
        assert_eq!(nlp.block, 32);
        assert_eq!(nlp.buffer.capacity, 16);
    }

    #[test]
    fn prefetch_buffer_lru_eviction() {
        let mut pb = PrefetchBuffer::new(2);
        assert_eq!(pb.insert(BlockAddr(1), Cycle::ZERO), None);
        assert_eq!(pb.insert(BlockAddr(2), Cycle::ZERO), None);
        // Re-inserting 1 refreshes it; 2 becomes LRU.
        assert_eq!(pb.insert(BlockAddr(1), Cycle::ZERO), None);
        assert_eq!(pb.insert(BlockAddr(3), Cycle::ZERO), Some(BlockAddr(2)));
        assert!(pb.contains(BlockAddr(1)));
        assert!(pb.take(BlockAddr(3)).is_some());
        assert!(!pb.contains(BlockAddr(3)));
    }
}
