//! The prefetcher plugin registry.
//!
//! Every prefetch engine the workspace knows about is described by one
//! [`EngineDescriptor`] row in [`ENGINES`]. The simulator's
//! `PrefetcherKind`, its `FromStr` parser, the sweep grids and both CLI
//! front ends enumerate this table instead of open-coding engine lists,
//! so adding an engine costs one file in `crates/core/src/predictor/`
//! plus one row here — not synchronized edits across five match sites.
//!
//! Ordering is the CLI/reporting order: the historical and demand-based
//! baselines first, the modern competitors next, and the paper's own
//! Figure 5–9 grid last. Filtering [`ENGINES`] by
//! [`EngineDescriptor::paper`] in table order yields exactly the
//! figures' reporting order (`Base` through `ConfAlloc-Priority`), which
//! is what `PrefetcherKind::PAPER` relies on.

use crate::demand::{DemandMarkovPrefetcher, NextLinePrefetcher};
use crate::fetch_directed::FetchDirectedPrefetcher;
use crate::prefetcher::{NoPrefetch, Prefetcher};
use crate::stream::{PsbPrefetcher, SbConfig, SequentialStreamBuffers, StrideStreamBuffers};

/// One registered prefetch engine: the names the front ends and reports
/// use, whether it belongs to the paper's figure grid, and how to build
/// its baseline configuration.
pub struct EngineDescriptor {
    /// The CLI name (`--prefetcher <name>`; the `FromStr` spelling).
    pub name: &'static str,
    /// The label used in the paper's figures and report tables.
    pub label: &'static str,
    /// Member of the six-configuration grid of Figures 5–9.
    pub paper: bool,
    /// Constructs the engine in its baseline configuration.
    pub build: fn() -> Box<dyn Prefetcher>,
}

/// Every known engine, in CLI/reporting order. See the module docs for
/// the ordering contract.
pub const ENGINES: &[EngineDescriptor] = &[
    EngineDescriptor {
        name: "none",
        label: "Base",
        paper: true,
        build: || Box::new(NoPrefetch::new()),
    },
    EngineDescriptor {
        name: "sequential",
        label: "Sequential",
        paper: false,
        build: || Box::new(SequentialStreamBuffers::sequential()),
    },
    EngineDescriptor {
        name: "next-line",
        label: "Next-Line",
        paper: false,
        build: || Box::new(NextLinePrefetcher::baseline()),
    },
    EngineDescriptor {
        name: "demand-markov",
        label: "Demand-Markov",
        paper: false,
        build: || Box::new(DemandMarkovPrefetcher::baseline()),
    },
    EngineDescriptor {
        name: "fetch-directed",
        label: "Fetch-Directed",
        paper: false,
        build: || Box::new(FetchDirectedPrefetcher::baseline()),
    },
    crate::predictor::pangloss::DESCRIPTOR,
    crate::predictor::dspatch::DESCRIPTOR,
    EngineDescriptor {
        name: "pc-stride",
        label: "PC-stride",
        paper: true,
        build: || Box::new(StrideStreamBuffers::pc_stride()),
    },
    EngineDescriptor {
        name: "2miss-rr",
        label: "2Miss-RR",
        paper: true,
        build: || Box::new(PsbPrefetcher::psb(SbConfig::psb_two_miss_rr())),
    },
    EngineDescriptor {
        name: "2miss-priority",
        label: "2Miss-Priority",
        paper: true,
        build: || Box::new(PsbPrefetcher::psb(SbConfig::psb_two_miss_priority())),
    },
    EngineDescriptor {
        name: "conf-rr",
        label: "ConfAlloc-RR",
        paper: true,
        build: || Box::new(PsbPrefetcher::psb(SbConfig::psb_conf_rr())),
    },
    EngineDescriptor {
        name: "conf-priority",
        label: "ConfAlloc-Priority",
        paper: true,
        build: || Box::new(PsbPrefetcher::psb(SbConfig::psb_conf_priority())),
    },
];

/// Compile-time string equality (stable `const fn` has no `==` for
/// `str`), so registry positions can be resolved into constants.
const fn str_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    while i < a.len() {
        if a[i] != b[i] {
            return false;
        }
        i += 1;
    }
    true
}

/// Resolves a CLI name to its [`ENGINES`] index at compile time.
///
/// # Panics
///
/// Compile error (const panic) when `name` is not registered — a
/// `PrefetcherKind` constant naming a missing engine cannot build.
pub const fn engine_index(name: &str) -> usize {
    let mut i = 0;
    while i < ENGINES.len() {
        if str_eq(ENGINES[i].name, name) {
            return i;
        }
        i += 1;
    }
    panic!("engine name not present in the psb-core registry")
}

/// Number of registered engines in the paper's figure grid.
pub const fn paper_engine_count() -> usize {
    let mut n = 0;
    let mut i = 0;
    while i < ENGINES.len() {
        if ENGINES[i].paper {
            n += 1;
        }
        i += 1;
    }
    n
}

/// Looks up an engine by CLI name at runtime.
pub fn find_engine(name: &str) -> Option<&'static EngineDescriptor> {
    ENGINES.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for (i, e) in ENGINES.iter().enumerate() {
            assert_eq!(engine_index(e.name), i, "{} resolves to its own row", e.name);
            assert_eq!(find_engine(e.name).unwrap().label, e.label);
        }
        assert!(find_engine("bogus").is_none());
    }

    #[test]
    fn built_engines_report_coherent_names() {
        // Engine self-reported names need not equal CLI names (the PSB
        // family shares one type), but every build must succeed and the
        // no-prefetch baseline keeps its identity.
        for e in ENGINES {
            let engine = (e.build)();
            assert!(!engine.name().is_empty(), "{} builds a named engine", e.name);
        }
        assert_eq!((find_engine("none").unwrap().build)().name(), "none");
    }

    #[test]
    fn paper_grid_is_the_figure_five_lineup() {
        let labels: Vec<&str> = ENGINES.iter().filter(|e| e.paper).map(|e| e.label).collect();
        assert_eq!(
            labels,
            [
                "Base",
                "PC-stride",
                "2Miss-RR",
                "2Miss-Priority",
                "ConfAlloc-RR",
                "ConfAlloc-Priority"
            ]
        );
        assert_eq!(paper_engine_count(), 6);
    }

    #[test]
    fn const_name_resolution_matches_runtime() {
        const PC_STRIDE: usize = engine_index("pc-stride");
        assert_eq!(ENGINES[PC_STRIDE].label, "PC-stride");
    }
}
