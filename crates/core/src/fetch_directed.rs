//! Fetch-stream data prefetching (Section 3.1 of the paper).
//!
//! Chen & Baer's lookahead-PC family triggers a data prefetch when a load
//! enters the *fetch* stage, using a PC-indexed address predictor trained
//! at write-back: "The LA-PC ... is used to index into an address
//! prediction table to predict data addresses for cache prefetching.
//! Since the LA-PC provided the instruction address stream ahead of the
//! normal fetch engine, they were able to initiate data cache prefetches
//! farther in advance."
//!
//! Our model observes the real fetch stream (the correct-path trace),
//! which is what a lookahead PC converges to between mispredictions; the
//! prefetch lead equals the front-end-to-issue distance. The amount of
//! latency hidden "is dependent upon how far the look-ahead PC can get in
//! front of the execution stream" — which is exactly why the paper builds
//! on stream buffers instead: a fetch-stream prefetcher can never get
//! farther ahead than the fetch unit itself.

use crate::predictor::StrideTable;
use crate::prefetcher::{PrefetchSink, PrefetchStats, Prefetcher, SbLookup};
use psb_common::{Addr, BlockAddr, Cycle};
use std::collections::VecDeque;

/// A prefetch-buffer slot.
#[derive(Copy, Clone, Debug)]
struct Slot {
    block: BlockAddr,
    ready: Cycle,
    lru: u64,
}

/// A fetch-directed stride prefetcher: loads are looked up in a two-delta
/// stride table the moment they are fetched, and the predicted address is
/// prefetched into a small buffer.
///
/// # Example
///
/// ```
/// use psb_common::{Addr, Cycle};
/// use psb_core::{FetchDirectedPrefetcher, Prefetcher, SbLookup, TestSink};
///
/// let mut fd = FetchDirectedPrefetcher::baseline();
/// let pc = Addr::new(0x400);
/// // Train at "write-back" with a steady stride...
/// for i in 0..4u64 {
///     fd.train(Cycle::ZERO, pc, Addr::new(0x1000 + 64 * i));
/// }
/// // ...then the next fetch of that load prefetches last + stride:
/// fd.observe_fetch(Cycle::new(10), pc);
/// let mut sink = TestSink::new(1);
/// fd.tick(Cycle::new(11), &mut sink);
/// assert!(matches!(fd.lookup(Cycle::new(20), Addr::new(0x1100)), SbLookup::Hit { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct FetchDirectedPrefetcher {
    table: StrideTable,
    buffer: Vec<Slot>,
    capacity: usize,
    pending: VecDeque<BlockAddr>,
    block: u64,
    stamp: u64,
    stats: PrefetchStats,
}

impl FetchDirectedPrefetcher {
    /// The default configuration: the paper's 256-entry 4-way stride
    /// table and a 16-entry prefetch buffer over 32-byte blocks.
    pub fn baseline() -> Self {
        FetchDirectedPrefetcher::new(StrideTable::paper_baseline(), 16, 32)
    }

    /// Creates a prefetcher with the given table, buffer capacity and
    /// block size.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `block` is not a power of two.
    pub fn new(table: StrideTable, capacity: usize, block: u64) -> Self {
        assert!(capacity > 0, "prefetch buffer needs at least one entry");
        assert!(block.is_power_of_two(), "block size must be a power of two");
        FetchDirectedPrefetcher {
            table,
            buffer: Vec::with_capacity(capacity),
            capacity,
            pending: VecDeque::new(),
            block,
            stamp: 0,
            stats: PrefetchStats::default(),
        }
    }

    fn buffered(&self, block: BlockAddr) -> Option<usize> {
        self.buffer.iter().position(|s| s.block == block)
    }
}

impl Prefetcher for FetchDirectedPrefetcher {
    fn lookup(&mut self, now: Cycle, addr: Addr) -> SbLookup {
        self.stats.lookups += 1;
        let block = addr.block(self.block);
        if let Some(i) = self.buffered(block) {
            let slot = self.buffer.swap_remove(i);
            self.stats.hits += 1;
            self.stats.used += 1;
            SbLookup::Hit { ready: slot.ready.max(now) }
        } else {
            SbLookup::Miss
        }
    }

    fn train(&mut self, _now: Cycle, pc: Addr, addr: Addr) {
        let out = self.table.train(pc, addr);
        if !out.cold {
            self.table.confirm(pc, out.stride_correct);
        }
    }

    fn allocate(&mut self, _now: Cycle, _pc: Addr, _addr: Addr) {}

    fn observe_fetch(&mut self, _now: Cycle, pc: Addr) {
        // Predict the load's next address from its table entry and queue
        // a prefetch — the LA-PC trigger.
        let Some(info) = self.table.info(pc, Addr::new(0)) else {
            return;
        };
        if info.confidence == 0 || info.stride == 0 {
            return;
        }
        let predicted = info.last_addr.offset(info.stride).block(self.block);
        if self.buffered(predicted).is_none() && !self.pending.contains(&predicted) {
            self.pending.push_back(predicted);
            self.stats.predictions += 1;
        }
    }

    fn tick(&mut self, now: Cycle, sink: &mut dyn PrefetchSink) {
        if !sink.bus_free(now) {
            return;
        }
        let Some(block) = self.pending.pop_front() else {
            return;
        };
        let ready = sink.fetch(now, block.base(self.block));
        self.stamp += 1;
        let slot = Slot { block, ready, lru: self.stamp };
        if self.buffer.len() < self.capacity {
            self.buffer.push(slot);
        } else {
            let victim = self
                .buffer
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .map(|(i, _)| i)
                .expect("invariant: capacity > 0 keeps the buffer non-empty");
            self.buffer[victim] = slot;
        }
        self.stats.issued += 1;
    }

    fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn name(&self) -> &str {
        "fetch-directed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::TestSink;

    fn trained() -> FetchDirectedPrefetcher {
        let mut fd = FetchDirectedPrefetcher::baseline();
        for i in 0..5u64 {
            fd.train(Cycle::ZERO, Addr::new(0x400), Addr::new(0x1_0000 + 64 * i));
        }
        fd
    }

    #[test]
    fn fetch_sighting_triggers_prediction() {
        let mut fd = trained();
        let mut sink = TestSink::new(1);
        fd.observe_fetch(Cycle::new(10), Addr::new(0x400));
        fd.tick(Cycle::new(11), &mut sink);
        // last = 0x1_0100, stride 64 -> prefetch 0x1_0140.
        assert_eq!(sink.fetched, vec![Addr::new(0x1_0140)]);
        assert!(matches!(fd.lookup(Cycle::new(20), Addr::new(0x1_0140)), SbLookup::Hit { .. }));
    }

    #[test]
    fn unknown_or_unconfident_loads_stay_quiet() {
        let mut fd = FetchDirectedPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        fd.observe_fetch(Cycle::ZERO, Addr::new(0x999)); // never trained
                                                         // Trained but erratic: confidence 0.
        let mut x = 7u64;
        for _ in 0..6 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            fd.train(Cycle::ZERO, Addr::new(0x500), Addr::new((x >> 20) & 0xffff_ffe0));
        }
        fd.observe_fetch(Cycle::ZERO, Addr::new(0x500));
        for c in 0..4 {
            fd.tick(Cycle::new(c), &mut sink);
        }
        assert!(sink.fetched.is_empty());
        assert_eq!(fd.stats().issued, 0);
    }

    #[test]
    fn duplicate_sightings_prefetch_once() {
        let mut fd = trained();
        let mut sink = TestSink::new(1);
        fd.observe_fetch(Cycle::new(10), Addr::new(0x400));
        fd.observe_fetch(Cycle::new(10), Addr::new(0x400));
        for c in 11..16 {
            fd.tick(Cycle::new(c), &mut sink);
        }
        assert_eq!(fd.stats().issued, 1);
    }

    #[test]
    fn buffer_hit_consumes_entry() {
        let mut fd = trained();
        let mut sink = TestSink::new(1);
        fd.observe_fetch(Cycle::new(10), Addr::new(0x400));
        fd.tick(Cycle::new(11), &mut sink);
        assert!(matches!(fd.lookup(Cycle::new(20), Addr::new(0x1_0140)), SbLookup::Hit { .. }));
        assert!(matches!(fd.lookup(Cycle::new(21), Addr::new(0x1_0140)), SbLookup::Miss));
    }

    #[test]
    fn bus_gating_respected() {
        let mut fd = trained();
        let mut sink = TestSink::new(1);
        sink.bus_is_free = false;
        fd.observe_fetch(Cycle::new(10), Addr::new(0x400));
        for c in 11..20 {
            fd.tick(Cycle::new(c), &mut sink);
        }
        assert_eq!(fd.stats().issued, 0);
        sink.bus_is_free = true;
        fd.tick(Cycle::new(20), &mut sink);
        assert_eq!(fd.stats().issued, 1);
    }
}
