//! Jouppi's original next-block sequential streams.

use crate::predictor::{AllocInfo, StreamPredictor, StreamState};
use psb_common::Addr;

/// The sequential stream predictor: every prediction is the next cache
/// block.
///
/// This reproduces the streams of Jouppi's original stream-buffer
/// proposal (stream buffers "prefetch consecutive cache blocks, starting
/// with the one that missed in the L1 cache"). It carries no tables, so
/// every load is eligible for allocation and confidence is always
/// maximal. Included as a historical baseline and for ablations.
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_core::{SequentialPredictor, StreamPredictor, StreamState};
///
/// let p = SequentialPredictor::new(32, 7);
/// let mut s = StreamState::new(Addr::new(0), Addr::new(0x1000), 32);
/// assert_eq!(p.predict(&mut s), Some(Addr::new(0x1020)));
/// assert_eq!(p.predict(&mut s), Some(Addr::new(0x1040)));
/// ```
#[derive(Clone, Debug)]
pub struct SequentialPredictor {
    block: u64,
    confidence: u32,
}

impl SequentialPredictor {
    /// Creates a sequential predictor for `block`-byte cache blocks.
    /// `confidence` is reported for every load (the allocation filters
    /// are usually disabled for this design; Jouppi allocated on every
    /// miss).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two.
    pub fn new(block: u64, confidence: u32) -> Self {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        SequentialPredictor { block, confidence }
    }

    /// The confidence reported for every load.
    pub fn confidence(&self) -> u32 {
        self.confidence
    }
}

impl StreamPredictor for SequentialPredictor {
    fn train(&mut self, _pc: Addr, _addr: Addr) {}

    fn alloc_info(&self, _pc: Addr, _addr: Addr) -> Option<AllocInfo> {
        Some(AllocInfo {
            stride: self.block as i64,
            confidence: self.confidence,
            two_miss_ok: true,
            history: 0,
        })
    }

    fn predict(&self, state: &mut StreamState) -> Option<Addr> {
        let next = state.last_addr.block_base(self.block).offset(self.block as i64);
        state.history = state.last_addr.raw();
        state.last_addr = next;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_consecutive_blocks() {
        let p = SequentialPredictor::new(64, 7);
        let mut s = StreamState::new(Addr::new(0), Addr::new(0x1038), 64);
        assert_eq!(p.predict(&mut s), Some(Addr::new(0x1040)));
        assert_eq!(p.predict(&mut s), Some(Addr::new(0x1080)));
        assert_eq!(p.predict(&mut s), Some(Addr::new(0x10c0)));
    }

    #[test]
    fn every_load_is_eligible() {
        let p = SequentialPredictor::new(32, 7);
        let info = p.alloc_info(Addr::new(0x9999), Addr::new(0x1)).unwrap();
        assert!(info.two_miss_ok);
        assert_eq!(info.stride, 32);
        assert_eq!(info.confidence, 7);
    }
}
