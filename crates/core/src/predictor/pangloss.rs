//! Pangloss: a compressed frequency-based Markov chain prefetcher over
//! page-local block deltas (Papaphilippou, Kelly & Luk,
//! arXiv:1906.00877).
//!
//! Pangloss approximates a Markov chain whose *nodes are deltas*, not
//! addresses: the transition "after stepping `d1` blocks the stream
//! stepped `d2` blocks" is far denser than an address-indexed table, so
//! a few kilobytes cover access patterns an address Markov table of the
//! same size cannot. Two structures implement it:
//!
//! * a **page table** remembering, per recently-touched page, the last
//!   missed block and the delta that reached it (the chain's current
//!   node), and
//! * a **delta table** — the Markov chain itself — mapping a previous
//!   delta to a handful of successor deltas with small frequency
//!   counters. When a counter saturates, every counter in the row is
//!   halved: old evidence decays but relative order survives, which is
//!   the paper's "compressed" frequency encoding (it also keeps the
//!   counters narrow, bounding storage).
//!
//! Prediction walks the chain: from the just-observed delta, repeatedly
//! take the most frequent successor (subject to a confidence floor) and
//! prefetch the block it lands on, up to a fixed degree, never crossing
//! the page boundary. Like the repo's other demand-based engines,
//! prefetched blocks stage in a small LRU buffer rather than the cache.
//!
//! # Example
//!
//! ```
//! use psb_common::{Addr, Cycle};
//! use psb_core::{PanglossPrefetcher, Prefetcher, SbLookup, TestSink};
//!
//! let mut pg = PanglossPrefetcher::baseline();
//! let mut sink = TestSink::new(1);
//! // A repeating +2-block walk inside one page trains the chain...
//! for i in 0..4u64 {
//!     pg.train(Cycle::ZERO, Addr::new(0x400), Addr::new(0x10_0000 + 64 * i));
//! }
//! for c in 1..8 {
//!     pg.tick(Cycle::new(c), &mut sink);
//! }
//! // ...and the next step of the walk is already staged:
//! assert!(matches!(pg.lookup(Cycle::new(9), Addr::new(0x10_0100)), SbLookup::Hit { .. }));
//! ```

use crate::demand::PrefetchBuffer;
use crate::prefetcher::{PrefetchSink, PrefetchStats, Prefetcher, SbLookup};
use crate::registry::EngineDescriptor;
use psb_common::{Addr, BlockAddr, Cycle};
use std::collections::VecDeque;

/// The registry row for the baseline Pangloss configuration.
pub(crate) const DESCRIPTOR: EngineDescriptor = EngineDescriptor {
    name: "pangloss",
    label: "Pangloss",
    paper: false,
    build: || Box::new(PanglossPrefetcher::baseline()),
};

/// One tracked page: the chain's position within it.
#[derive(Copy, Clone, Debug)]
struct PageEntry {
    page: u64,
    /// Last missed block of the page.
    last_block: BlockAddr,
    /// Delta (in blocks) that reached `last_block`, or `NO_DELTA` when
    /// the page has seen only one miss.
    last_delta: i32,
    lru: u64,
    valid: bool,
}

/// Sentinel for "no previous delta recorded yet".
const NO_DELTA: i32 = i32::MIN;

/// One successor candidate in a delta-table row.
#[derive(Copy, Clone, Debug, Default)]
struct Successor {
    /// Successor delta in blocks (0 = empty slot; a zero block delta
    /// never occurs, consecutive misses to one block are one miss).
    to: i32,
    /// Saturating frequency counter.
    count: u8,
}

/// The compressed frequency-based Markov chain prefetcher.
#[derive(Clone, Debug)]
pub struct PanglossPrefetcher {
    /// Delta table: row per possible previous delta, `ways` successor
    /// candidates each. Indexed directly by `delta + blocks_per_page`.
    rows: Vec<Successor>,
    pages: Vec<PageEntry>,
    buffer: PrefetchBuffer,
    pending: VecDeque<BlockAddr>,
    block: u64,
    /// Blocks per page (power of two): deltas live in
    /// `-(bpp-1) ..= bpp-1`.
    blocks_per_page: i32,
    ways: usize,
    degree: usize,
    stamp: u64,
    stats: PrefetchStats,
}

/// Frequency ceiling: reaching it halves the whole row (5-bit counters
/// in the paper's table; the decay keeps them narrow).
const COUNT_MAX: u8 = 31;

impl PanglossPrefetcher {
    /// The baseline configuration: 64 tracked pages of 8 KB, 32-byte
    /// blocks (256 blocks/page), 4 successor candidates per delta,
    /// prefetch degree 4, 32-entry staging buffer.
    pub fn baseline() -> Self {
        PanglossPrefetcher::new(8192, 32, 64, 4, 4, 32)
    }

    /// Creates a Pangloss prefetcher.
    ///
    /// # Panics
    ///
    /// Panics when `page`/`block` are not powers of two, when `block`
    /// does not divide `page`, or when any capacity is zero.
    pub fn new(
        page: u64,
        block: u64,
        page_entries: usize,
        ways: usize,
        degree: usize,
        buffer: usize,
    ) -> Self {
        assert!(page.is_power_of_two() && block.is_power_of_two(), "pow2 page/block required");
        assert!(block < page, "a page must span several blocks");
        assert!(page_entries > 0 && ways > 0 && degree > 0, "zero-sized Pangloss structure");
        let blocks_per_page = (page / block) as i32;
        PanglossPrefetcher {
            // Rows for deltas -(bpp-1) ..= bpp-1, indexed by delta + bpp.
            rows: vec![Successor::default(); (2 * blocks_per_page as usize + 1) * ways],
            pages: vec![
                PageEntry {
                    page: 0,
                    last_block: BlockAddr(0),
                    last_delta: NO_DELTA,
                    lru: 0,
                    valid: false
                };
                page_entries
            ],
            buffer: PrefetchBuffer::new(buffer),
            pending: VecDeque::new(),
            block,
            blocks_per_page,
            ways,
            degree,
            stamp: 0,
            stats: PrefetchStats::default(),
        }
    }

    /// The delta-table row for a previous delta.
    fn row(&self, delta: i32) -> &[Successor] {
        let i = (delta + self.blocks_per_page) as usize * self.ways;
        &self.rows[i..i + self.ways]
    }

    fn row_mut(&mut self, delta: i32) -> &mut [Successor] {
        let i = (delta + self.blocks_per_page) as usize * self.ways;
        &mut self.rows[i..i + self.ways]
    }

    /// Records the transition `from → to` with saturation-halving decay.
    fn record(&mut self, from: i32, to: i32) {
        let row = self.row_mut(from);
        if let Some(s) = row.iter_mut().find(|s| s.to == to) {
            s.count += 1;
            if s.count >= COUNT_MAX {
                for s in row {
                    s.count /= 2;
                }
            }
        } else {
            // Replace the least frequent candidate (empty slots have
            // count 0 and lose every comparison).
            let weakest = row
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.count)
                .map(|(i, _)| i)
                .expect("invariant: ways > 0 keeps rows non-empty");
            row[weakest] = Successor { to, count: 1 };
        }
    }

    /// The most frequent successor of `from`, if it clears the
    /// confidence floor (strictly more than its fair share of the row's
    /// total evidence — the paper's 1/3-ish threshold at our ways).
    fn best_successor(&self, from: i32) -> Option<i32> {
        let row = self.row(from);
        let total: u32 = row.iter().map(|s| s.count as u32).sum();
        let best = row.iter().max_by_key(|s| s.count)?;
        (best.count >= 2 && best.count as u32 * self.ways as u32 > total).then_some(best.to)
    }

    /// Queues a prefetch unless the block is already staged or queued.
    fn enqueue(&mut self, block: BlockAddr) {
        self.stats.predictions += 1;
        if self.buffer.contains(block) || self.pending.contains(&block) {
            self.stats.suppressed += 1;
        } else {
            self.pending.push_back(block);
        }
    }

    /// Walks the chain from `(block, delta)` and queues up to `degree`
    /// in-page prefetches.
    fn predict_from(&mut self, mut block: BlockAddr, mut delta: i32) {
        let bpp = self.blocks_per_page as u64;
        let page = block.0 / bpp;
        for _ in 0..self.degree {
            let Some(next) = self.best_successor(delta) else { break };
            let target = block.offset(next as i64);
            if target.0 / bpp != page {
                break; // Pangloss never follows the chain off the page.
            }
            self.enqueue(target);
            block = target;
            delta = next;
        }
    }

    /// Finds the page-table way holding `page`, if tracked.
    fn page_slot(&self, page: u64) -> Option<usize> {
        self.pages.iter().position(|e| e.valid && e.page == page)
    }
}

impl Prefetcher for PanglossPrefetcher {
    fn lookup(&mut self, now: Cycle, addr: Addr) -> SbLookup {
        self.stats.lookups += 1;
        let block = addr.block(self.block);
        if let Some(e) = self.buffer.take(block) {
            self.stats.hits += 1;
            self.stats.used += 1;
            SbLookup::Hit { ready: e.ready.max(now) }
        } else {
            SbLookup::Miss
        }
    }

    fn train(&mut self, _now: Cycle, _pc: Addr, addr: Addr) {
        let block = addr.block(self.block);
        let page = block.0 / self.blocks_per_page as u64;
        self.stamp += 1;
        match self.page_slot(page) {
            Some(i) => {
                let e = &mut self.pages[i];
                let delta = block.delta(e.last_block) as i32;
                if delta == 0 {
                    e.lru = self.stamp;
                    return; // same block again: no chain step
                }
                let prev = e.last_delta;
                e.last_block = block;
                e.last_delta = delta;
                e.lru = self.stamp;
                if prev != NO_DELTA {
                    self.record(prev, delta);
                }
                self.predict_from(block, delta);
            }
            None => {
                let victim = self
                    .pages
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (e.valid, e.lru))
                    .map(|(i, _)| i)
                    .expect("invariant: page_entries > 0 keeps the table non-empty");
                self.pages[victim] = PageEntry {
                    page,
                    last_block: block,
                    last_delta: NO_DELTA,
                    lru: self.stamp,
                    valid: true,
                };
            }
        }
    }

    fn allocate(&mut self, _now: Cycle, _pc: Addr, _addr: Addr) {}

    fn tick(&mut self, now: Cycle, sink: &mut dyn PrefetchSink) {
        if !sink.bus_free(now) {
            return;
        }
        let Some(block) = self.pending.pop_front() else {
            return;
        };
        let ready = sink.fetch(now, block.base(self.block));
        self.buffer.insert(block, ready);
        self.stats.issued += 1;
    }

    fn quiescent(&self) -> bool {
        // With nothing queued, `tick` can neither issue nor change a
        // counter; only `lookup`/`train` (both reached through the
        // simulator's miss path, which drops the idle shortcut) refill
        // the queue.
        self.pending.is_empty()
    }

    fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn name(&self) -> &str {
        "pangloss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::TestSink;

    fn drain(p: &mut PanglossPrefetcher, sink: &mut TestSink, from: u64, cycles: u64) {
        for c in from..from + cycles {
            p.tick(Cycle::new(c), sink);
        }
    }

    #[test]
    fn constant_stride_chain_prefetches_ahead() {
        let mut pg = PanglossPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        // +2 blocks (64 bytes) per miss, in one page.
        for i in 0..4u64 {
            pg.train(Cycle::ZERO, Addr::new(0x400), Addr::new(0x10_0000 + 64 * i));
        }
        drain(&mut pg, &mut sink, 1, 8);
        // After the third identical delta the chain predicts onward:
        // 0x10_00c0 + 64, +128, ...
        assert!(sink.fetched.contains(&Addr::new(0x10_0100)), "fetched: {:?}", sink.fetched);
        assert!(matches!(pg.lookup(Cycle::new(20), Addr::new(0x10_0100)), SbLookup::Hit { .. }));
        assert!(pg.stats().issued >= 1);
    }

    #[test]
    fn chain_walk_reaches_degree_deep() {
        let mut pg = PanglossPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        // Strong +1-block chain: every step's successor is +1 again.
        for i in 0..12u64 {
            pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x20_0000 + 32 * i));
        }
        sink.fetched.clear();
        pg.pending.clear();
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x20_0000 + 32 * 12));
        drain(&mut pg, &mut sink, 1, 8);
        // Degree-4 chain: the next four blocks queued in one shot.
        let expected: Vec<Addr> = (13..17).map(|i| Addr::new(0x20_0000 + 32 * i)).collect();
        assert_eq!(sink.fetched, expected);
    }

    #[test]
    fn alternating_deltas_learn_both_transitions() {
        let mut pg = PanglossPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        // Walk +3, +5, +3, +5 ... blocks: after +3 comes +5 and vice
        // versa, so each prediction follows the alternation.
        let mut block = 0u64;
        for i in 0..9 {
            block += if i % 2 == 0 { 3 } else { 5 };
            pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x40_0000 + 32 * block));
        }
        pg.pending.clear();
        sink.fetched.clear();
        // The tenth step is +5 (i = 9); after a +5 the chain expects +3.
        block += 5;
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x40_0000 + 32 * block));
        let next = Addr::new(0x40_0000 + 32 * (block + 3));
        drain(&mut pg, &mut sink, 1, 6);
        assert!(sink.fetched.contains(&next), "fetched: {:?}", sink.fetched);
    }

    #[test]
    fn never_prefetches_across_the_page_boundary() {
        let mut pg = PanglossPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        // +32-block strides march toward the top of an 8 KB page.
        let base = 0x30_0000u64; // page-aligned
        for i in 0..8u64 {
            pg.train(Cycle::ZERO, Addr::new(0), Addr::new(base + i * 32 * 32));
        }
        drain(&mut pg, &mut sink, 1, 32);
        assert!(
            sink.fetched.iter().all(|a| a.raw() < base + 8192),
            "no fetch may leave the page: {:?}",
            sink.fetched
        );
    }

    #[test]
    fn saturation_halves_the_row_but_keeps_the_order() {
        let mut pg = PanglossPrefetcher::baseline();
        // Drive one transition to saturation, with a weak competitor.
        pg.record(4, 8);
        for _ in 0..COUNT_MAX {
            pg.record(4, 2);
        }
        let row = pg.row(4);
        let strong = row.iter().find(|s| s.to == 2).unwrap();
        let weak = row.iter().find(|s| s.to == 8).unwrap();
        assert!(strong.count < COUNT_MAX, "decay must have halved the row");
        assert!(strong.count > weak.count, "relative frequency order survives decay");
        assert_eq!(pg.best_successor(4), Some(2));
    }

    #[test]
    fn low_confidence_rows_stay_silent() {
        let mut pg = PanglossPrefetcher::baseline();
        // Four successors with equal evidence: no candidate clears the
        // fair-share confidence floor.
        for to in [1, 2, 3, 5] {
            pg.record(7, to);
            pg.record(7, to);
        }
        assert_eq!(pg.best_successor(7), None);
    }

    #[test]
    fn pages_are_tracked_independently() {
        let mut pg = PanglossPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        // Interleave two pages with different strides; each page's chain
        // stays coherent (the delta table is shared, the positions are
        // per page).
        for i in 0..6u64 {
            pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x10_0000 + 64 * i));
            pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x50_0000 + 96 * i));
        }
        drain(&mut pg, &mut sink, 1, 40);
        assert!(sink.fetched.contains(&Addr::new(0x10_0000 + 64 * 6)));
        assert!(sink.fetched.contains(&Addr::new(0x50_0000 + 96 * 6)));
    }

    #[test]
    fn quiescent_exactly_when_queue_is_empty() {
        let mut pg = PanglossPrefetcher::baseline();
        assert!(pg.quiescent(), "fresh engine has nothing to do");
        for i in 0..4u64 {
            pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x60_0000 + 64 * i));
        }
        assert!(!pg.quiescent(), "queued predictions demand ticks");
        let mut sink = TestSink::new(1);
        drain(&mut pg, &mut sink, 1, 16);
        assert!(pg.quiescent(), "drained queue goes idle again");
        // And while quiescent, a tick is externally unobservable.
        let before = (pg.stats(), sink.fetched.len());
        pg.tick(Cycle::new(99), &mut sink);
        assert_eq!((pg.stats(), sink.fetched.len()), before);
    }

    #[test]
    fn bus_gating_respected() {
        let mut pg = PanglossPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        sink.bus_is_free = false;
        for i in 0..4u64 {
            pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x70_0000 + 64 * i));
        }
        drain(&mut pg, &mut sink, 1, 8);
        assert_eq!(pg.stats().issued, 0);
        sink.bus_is_free = true;
        drain(&mut pg, &mut sink, 9, 1);
        assert_eq!(pg.stats().issued, 1);
    }

    #[test]
    fn duplicate_predictions_are_suppressed() {
        let mut pg = PanglossPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        for i in 0..8u64 {
            pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x80_0000 + 64 * i));
            pg.tick(Cycle::new(i), &mut sink);
        }
        assert!(pg.stats().suppressed > 0, "re-predicted staged blocks must be suppressed");
        let uniq: std::collections::HashSet<&Addr> = sink.fetched.iter().collect();
        assert_eq!(uniq.len(), sink.fetched.len(), "no block fetched twice: {:?}", sink.fetched);
    }

    #[test]
    #[should_panic(expected = "zero-sized Pangloss structure")]
    fn zero_degree_panics() {
        PanglossPrefetcher::new(8192, 32, 64, 4, 0, 32);
    }

    #[test]
    #[should_panic(expected = "pow2 page/block required")]
    fn non_pow2_page_panics() {
        PanglossPrefetcher::new(5000, 32, 64, 4, 4, 32);
    }

    #[test]
    #[should_panic(expected = "a page must span several blocks")]
    fn block_equal_to_page_panics() {
        PanglossPrefetcher::new(32, 32, 64, 4, 4, 32);
    }

    #[test]
    #[should_panic(expected = "zero-sized Pangloss structure")]
    fn zero_page_entries_panics() {
        PanglossPrefetcher::new(8192, 32, 0, 4, 4, 32);
    }

    #[test]
    #[should_panic(expected = "zero-sized Pangloss structure")]
    fn zero_ways_panics() {
        PanglossPrefetcher::new(8192, 32, 64, 0, 4, 32);
    }

    #[test]
    fn minimal_configuration_constructs() {
        let pg = PanglossPrefetcher::new(8192, 32, 1, 1, 1, 1);
        assert_eq!((pg.pages.len(), pg.ways, pg.degree), (1, 1, 1));
    }

    #[test]
    fn baseline_configuration_is_pinned() {
        let pg = PanglossPrefetcher::baseline();
        assert_eq!(pg.pages.len(), 64);
        assert_eq!((pg.ways, pg.degree), (4, 4));
        assert_eq!(pg.block, 32);
        assert_eq!(pg.blocks_per_page, 256);
        assert_eq!(pg.rows.len(), (2 * 256 + 1) * 4);
        assert_eq!(pg.buffer.capacity(), 32);
        // The fresh state is fully zeroed: page slots invalid with
        // cleared fields, the delta table empty, the LRU clock at 0.
        assert_eq!(pg.stamp, 0);
        for e in &pg.pages {
            assert!(!e.valid);
            assert_eq!((e.page, e.last_block.0, e.last_delta, e.lru), (0, 0, NO_DELTA, 0));
        }
        assert!(pg.rows.iter().all(|s| s.to == 0 && s.count == 0));
    }

    #[test]
    fn saturation_boundary_is_exact() {
        let mut pg = PanglossPrefetcher::baseline();
        let count = |pg: &PanglossPrefetcher| {
            pg.row(1).iter().find(|s| s.to == 2).map(|s| s.count).unwrap_or(0)
        };
        for _ in 0..30 {
            pg.record(1, 2);
        }
        assert_eq!(count(&pg), 30, "30 observations stay below the ceiling of 31");
        pg.record(1, 2);
        assert_eq!(count(&pg), 15, "reaching the ceiling halves the count");
    }

    #[test]
    fn confidence_floor_needs_two_observations() {
        let mut pg = PanglossPrefetcher::baseline();
        pg.record(3, 7);
        assert_eq!(pg.best_successor(3), None, "a single observation is not confidence");
        pg.record(3, 7);
        assert_eq!(pg.best_successor(3), Some(7));
    }

    #[test]
    fn every_prediction_is_counted() {
        let mut pg = PanglossPrefetcher::baseline();
        pg.enqueue(BlockAddr(40));
        pg.enqueue(BlockAddr(40));
        let s = pg.stats();
        assert_eq!((s.predictions, s.suppressed), (2, 1));
        assert_eq!(pg.pending.len(), 1, "the duplicate must not queue");
    }

    #[test]
    fn lookup_stats_count_misses_and_hits() {
        let mut pg = PanglossPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        assert!(matches!(pg.lookup(Cycle::new(1), Addr::new(0x1000)), SbLookup::Miss));
        let s = pg.stats();
        assert_eq!((s.lookups, s.hits, s.used), (1, 0, 0));
        pg.pending.push_back(Addr::new(0x2000).block(32));
        pg.tick(Cycle::new(2), &mut sink);
        assert!(matches!(pg.lookup(Cycle::new(3), Addr::new(0x2000)), SbLookup::Hit { .. }));
        let s = pg.stats();
        assert_eq!((s.lookups, s.hits, s.used), (2, 1, 1));
    }

    #[test]
    fn reused_page_survives_lru_eviction() {
        let mut pg = PanglossPrefetcher::new(8192, 32, 2, 4, 4, 32);
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x10_0000)); // A
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x20_0000)); // B
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x10_0020)); // refresh A
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x30_0000)); // evicts B, the true LRU
        assert!(pg.page_slot(0x10_0000 / 8192).is_some(), "refreshed page was evicted");
        assert!(pg.page_slot(0x20_0000 / 8192).is_none(), "stale page was kept");
    }

    #[test]
    fn repeated_block_is_not_a_chain_step() {
        let mut pg = PanglossPrefetcher::baseline();
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x10_0000));
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x10_0060)); // +3 blocks
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x10_0060)); // same block: no step
        pg.train(Cycle::ZERO, Addr::new(0), Addr::new(0x10_00c0)); // +3 again
        assert!(pg.row(0).iter().all(|s| s.count == 0), "a zero delta entered the chain");
        let learned = pg.row(3).iter().find(|s| s.to == 3).expect("the +3 after +3 transition");
        assert_eq!(learned.count, 1);
    }
}
