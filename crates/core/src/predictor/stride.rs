//! The two-delta stride address predictor.

use psb_common::{Addr, SatCounter};

/// Prediction state read out of the stride table for one load PC.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StrideInfo {
    /// Last miss address recorded for the load.
    pub last_addr: Addr,
    /// The two-delta stride (only replaced when a new stride is seen
    /// twice in a row).
    pub stride: i64,
    /// Accuracy confidence (saturating, 0..=max).
    pub confidence: u32,
    /// Number of consecutive training updates whose stride matched the
    /// previous stride — the paper's two-miss filter condition is
    /// `streak >= 2`.
    pub stride_streak: u32,
    /// Number of consecutive training updates that the predictor (stride
    /// or, for SFM, Markov) got right.
    pub predicted_streak: u32,
}

/// What a training update observed, fed back to hybrid predictors.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StrideTrainOutcome {
    /// The address recorded for this PC before the update (the Markov
    /// "from" state), if the entry existed.
    pub prev_addr: Option<Addr>,
    /// Whether the two-delta stride prediction matched the new address.
    pub stride_correct: bool,
    /// Whether the newly observed stride equals the previously observed
    /// stride (the paper's other condition for skipping the Markov
    /// update: the stride matches "the last stride or 2-delta stride").
    pub repeat_stride: bool,
    /// Whether this was the entry's first update (no prediction possible).
    pub cold: bool,
}

#[derive(Copy, Clone, Debug)]
struct Entry {
    tag: u64,
    last_addr: Addr,
    last_stride: i64,
    two_delta: i64,
    confidence: SatCounter,
    stride_streak: u32,
    predicted_streak: u32,
    lru: u64,
    valid: bool,
}

/// A PC-indexed, set-associative two-delta stride table.
///
/// The paper keeps "data cache missed loads ... in a 256 entry 4-way
/// associative stride address prediction table", updated only in the
/// write-back stage of loads that miss in the L1. The two-delta rule
/// "only replaces the predicted stride with a new stride if that new
/// stride has been seen twice in a row" \[Eickemeyer & Vassiliadis;
/// Sazeides & Smith\].
///
/// Per-entry accuracy confidence (saturating at 7 in the paper) counts how
/// often the load's misses were predictable; Predictor-Directed Stream
/// Buffers use it to gate allocation and to seed the stream buffer's
/// priority counter.
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_core::StrideTable;
///
/// let mut t = StrideTable::paper_baseline();
/// let pc = Addr::new(0x1000);
/// for i in 0..4u64 {
///     t.train(pc, Addr::new(0x8000 + 64 * i));
/// }
/// let info = t.info(pc, Addr::new(0x80c0)).expect("trained pc stays resident in the table");
/// assert_eq!(info.stride, 64);
/// ```
#[derive(Clone, Debug)]
pub struct StrideTable {
    sets: Vec<Entry>,
    num_sets: usize,
    assoc: usize,
    confidence_max: u32,
    stamp: u64,
    /// `log2(num_sets)` when the set count is a power of two, letting
    /// indexing use mask/shift instead of division (every standard
    /// geometry qualifies; odd set counts fall back to `%` / `/`).
    set_shift: Option<u32>,
    /// Slot written by the most recent [`StrideTable::train`], keyed by
    /// the trained PC. [`StrideTable::confirm`] is documented to follow
    /// `train` for the same PC, so this turns its tag search into a
    /// single compare; it falls back to a full find on any other PC.
    last_trained: Option<(u64, usize)>,
}

impl StrideTable {
    /// The paper's 256-entry, 4-way table with confidence saturating at 7.
    pub fn paper_baseline() -> Self {
        StrideTable::new(256, 4, 7)
    }

    /// Creates a table with `entries` total slots, associativity `assoc`,
    /// and confidence ceiling `confidence_max`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `assoc`, or either is zero.
    pub fn new(entries: usize, assoc: usize, confidence_max: u32) -> Self {
        assert!(entries > 0 && assoc > 0, "zero-sized stride table");
        assert!(entries.is_multiple_of(assoc), "entries {entries} not divisible by assoc {assoc}");
        let num_sets = entries / assoc;
        StrideTable {
            sets: vec![
                Entry {
                    tag: 0,
                    last_addr: Addr::new(0),
                    last_stride: 0,
                    two_delta: 0,
                    confidence: SatCounter::new(confidence_max),
                    stride_streak: 0,
                    predicted_streak: 0,
                    lru: 0,
                    valid: false,
                };
                entries
            ],
            num_sets,
            assoc,
            confidence_max,
            stamp: 0,
            set_shift: num_sets.is_power_of_two().then(|| num_sets.trailing_zeros()),
            last_trained: None,
        }
    }

    fn set_and_tag(&self, pc: Addr) -> (usize, u64) {
        let idx = pc.word_index();
        match self.set_shift {
            Some(shift) => (idx & (self.num_sets - 1), (idx >> shift) as u64),
            None => (idx % self.num_sets, (idx / self.num_sets) as u64),
        }
    }

    fn find(&self, pc: Addr) -> Option<usize> {
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.assoc;
        (base..base + self.assoc).find(|&i| self.sets[i].valid && self.sets[i].tag == tag)
    }

    /// Trains the table on a missing load (`pc`, miss address `addr`).
    ///
    /// Returns what happened, so a hybrid predictor can decide whether to
    /// update its Markov stage, and *confirm* the confidence update via
    /// [`StrideTable::confirm`].
    pub fn train(&mut self, pc: Addr, addr: Addr) -> StrideTrainOutcome {
        self.stamp += 1;
        let stamp = self.stamp;

        if let Some(i) = self.find(pc) {
            self.last_trained = Some((pc.raw(), i));
            let e = &mut self.sets[i];
            let prev = e.last_addr;
            let new_stride = addr.delta(prev);
            let stride_correct = prev.offset(e.two_delta) == addr;
            let repeat_stride = new_stride == e.last_stride;

            if new_stride == e.last_stride {
                e.two_delta = new_stride;
                e.stride_streak = e.stride_streak.saturating_add(1);
            } else {
                e.stride_streak = 0;
            }
            e.last_stride = new_stride;
            e.last_addr = addr;
            e.lru = stamp;
            StrideTrainOutcome { prev_addr: Some(prev), stride_correct, repeat_stride, cold: false }
        } else {
            // Allocate: evict the LRU way of the set.
            let (set, tag) = self.set_and_tag(pc);
            let base = set * self.assoc;
            let victim = (base..base + self.assoc)
                .min_by_key(|&i| (self.sets[i].valid, self.sets[i].lru))
                .expect("invariant: assoc >= 1 gives every set at least one way");
            self.last_trained = Some((pc.raw(), victim));
            self.sets[victim] = Entry {
                tag,
                last_addr: addr,
                last_stride: 0,
                two_delta: 0,
                confidence: SatCounter::new(self.confidence_max),
                stride_streak: 0,
                predicted_streak: 0,
                lru: stamp,
                valid: true,
            };
            StrideTrainOutcome {
                prev_addr: None,
                stride_correct: false,
                repeat_stride: false,
                cold: true,
            }
        }
    }

    /// Records whether the *overall* predictor (stride alone, or
    /// stride-filtered-Markov) predicted this training address correctly,
    /// updating the accuracy confidence and prediction streak.
    ///
    /// Call immediately after [`StrideTable::train`] for the same `pc`.
    pub fn confirm(&mut self, pc: Addr, predicted_correctly: bool) {
        // A train() for this PC always leaves it resident at the cached
        // slot, so the common train-then-confirm sequence skips the scan.
        let slot = match self.last_trained {
            Some((raw, i)) if raw == pc.raw() => Some(i),
            _ => self.find(pc),
        };
        if let Some(i) = slot {
            let e = &mut self.sets[i];
            if predicted_correctly {
                e.confidence.inc();
                e.predicted_streak = e.predicted_streak.saturating_add(1);
            } else {
                e.confidence.dec();
                e.predicted_streak = 0;
            }
        }
    }

    /// Reads the allocation-time information for a load, if present.
    ///
    /// `addr` is the current miss address; the returned `last_addr` is the
    /// table's recorded address (normally equal to `addr` right after
    /// training).
    pub fn info(&self, pc: Addr, addr: Addr) -> Option<StrideInfo> {
        let _ = addr;
        self.find(pc).map(|i| {
            let e = &self.sets[i];
            StrideInfo {
                last_addr: e.last_addr,
                stride: e.two_delta,
                confidence: e.confidence.get(),
                stride_streak: e.stride_streak,
                predicted_streak: e.predicted_streak,
            }
        })
    }

    /// The confidence ceiling.
    pub fn confidence_max(&self) -> u32 {
        self.confidence_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_seq(t: &mut StrideTable, pc: u64, addrs: &[u64]) {
        for &a in addrs {
            let out = t.train(Addr::new(pc), Addr::new(a));
            let correct = out.prev_addr.is_some() && out.stride_correct;
            t.confirm(Addr::new(pc), correct);
        }
    }

    #[test]
    fn learns_constant_stride() {
        let mut t = StrideTable::paper_baseline();
        train_seq(&mut t, 0x1000, &[0x8000, 0x8040, 0x8080, 0x80c0, 0x8100]);
        let info = t
            .info(Addr::new(0x1000), Addr::new(0x8100))
            .expect("trained pc stays resident in the table");
        assert_eq!(info.stride, 0x40);
        assert_eq!(info.last_addr, Addr::new(0x8100));
        assert!(info.stride_streak >= 2);
        // Two-delta confirmation lags by two updates: the first stride
        // prediction that can be correct is the fourth address.
        assert!(info.confidence >= 2, "confidence = {}", info.confidence);
    }

    #[test]
    fn two_delta_resists_single_blip() {
        let mut t = StrideTable::paper_baseline();
        // Steady stride 64, one wild jump, then steady 64 again.
        train_seq(&mut t, 0x1000, &[0x8000, 0x8040, 0x8080]);
        let before = t
            .info(Addr::new(0x1000), Addr::new(0))
            .expect("trained pc stays resident in the table")
            .stride;
        assert_eq!(before, 64);
        t.train(Addr::new(0x1000), Addr::new(0xff00));
        // One deviant stride must NOT replace the two-delta stride.
        let after = t
            .info(Addr::new(0x1000), Addr::new(0))
            .expect("trained pc stays resident in the table")
            .stride;
        assert_eq!(after, 64);
    }

    #[test]
    fn two_delta_adopts_repeated_new_stride() {
        let mut t = StrideTable::paper_baseline();
        train_seq(&mut t, 0x1000, &[0x8000, 0x8040, 0x8080]); // stride 64
                                                              // New stride 128 seen twice in a row: adopted.
        t.train(Addr::new(0x1000), Addr::new(0x8100));
        t.train(Addr::new(0x1000), Addr::new(0x8180));
        let info = t
            .info(Addr::new(0x1000), Addr::new(0))
            .expect("trained pc stays resident in the table");
        assert_eq!(info.stride, 128);
    }

    #[test]
    fn confidence_tracks_predictability() {
        let mut t = StrideTable::paper_baseline();
        train_seq(&mut t, 0x2000, &[0x100, 0x140, 0x180, 0x1c0, 0x200, 0x240, 0x280]);
        let steady = t
            .info(Addr::new(0x2000), Addr::new(0))
            .expect("trained pc stays resident in the table");
        assert!(steady.confidence >= 3, "confidence = {}", steady.confidence);
        assert!(steady.predicted_streak >= 3);

        // A run of unpredictable addresses drives confidence back down.
        let mut chaos = 0x9000u64;
        for i in 0..8 {
            chaos = chaos.wrapping_mul(2862933555777941757).wrapping_add(3037000493 + i);
            let out = t.train(Addr::new(0x2000), Addr::new(chaos & 0xffff_fff8));
            t.confirm(Addr::new(0x2000), out.stride_correct);
        }
        let after = t
            .info(Addr::new(0x2000), Addr::new(0))
            .expect("trained pc stays resident in the table");
        assert_eq!(after.predicted_streak, 0);
        assert!(after.confidence <= 1, "confidence {}", after.confidence);
    }

    #[test]
    fn cold_entry_reports_cold() {
        let mut t = StrideTable::paper_baseline();
        let out = t.train(Addr::new(0x3000), Addr::new(0x100));
        assert!(out.cold);
        assert_eq!(out.prev_addr, None);
        let out = t.train(Addr::new(0x3000), Addr::new(0x140));
        assert!(!out.cold);
        assert_eq!(out.prev_addr, Some(Addr::new(0x100)));
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut t = StrideTable::paper_baseline();
        train_seq(&mut t, 0x1000, &[0x8000, 0x8040, 0x8080]);
        train_seq(&mut t, 0x1004, &[0x20, 0x30, 0x40]);
        assert_eq!(
            t.info(Addr::new(0x1000), Addr::new(0))
                .expect("trained pc stays resident in the table")
                .stride,
            0x40
        );
        assert_eq!(
            t.info(Addr::new(0x1004), Addr::new(0))
                .expect("trained pc stays resident in the table")
                .stride,
            0x10
        );
    }

    #[test]
    fn capacity_eviction_lru() {
        // 1 set x 2 ways: third PC evicts the least recently used.
        let mut t = StrideTable::new(2, 2, 7);
        t.train(Addr::new(0x1000), Addr::new(0x1));
        t.train(Addr::new(0x1004), Addr::new(0x2));
        t.train(Addr::new(0x1000), Addr::new(0x3)); // touch first
        t.train(Addr::new(0x1008), Addr::new(0x4)); // evicts 0x1004
        assert!(t.info(Addr::new(0x1000), Addr::new(0)).is_some());
        assert!(t.info(Addr::new(0x1004), Addr::new(0)).is_none());
        assert!(t.info(Addr::new(0x1008), Addr::new(0)).is_some());
    }

    #[test]
    fn negative_strides_work() {
        let mut t = StrideTable::paper_baseline();
        train_seq(&mut t, 0x1000, &[0x9000, 0x8fc0, 0x8f80, 0x8f40]);
        let info = t
            .info(Addr::new(0x1000), Addr::new(0))
            .expect("trained pc stays resident in the table");
        assert_eq!(info.stride, -64);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_panics() {
        StrideTable::new(10, 4, 7);
    }

    #[test]
    #[should_panic(expected = "zero-sized stride table")]
    fn zero_entries_panics() {
        StrideTable::new(0, 4, 7);
    }

    #[test]
    #[should_panic(expected = "zero-sized stride table")]
    fn zero_assoc_panics() {
        StrideTable::new(4, 0, 7);
    }

    #[test]
    fn paper_baseline_confidence_saturates_at_seven() {
        assert_eq!(StrideTable::paper_baseline().confidence_max(), 7);
    }

    #[test]
    fn single_entry_direct_mapped_table_works() {
        let mut t = StrideTable::new(1, 1, 7);
        t.train(Addr::new(0x1000), Addr::new(0x100));
        t.train(Addr::new(0x1000), Addr::new(0x140));
        let info = t.info(Addr::new(0x1000), Addr::new(0)).expect("resident");
        assert_eq!(info.last_addr, Addr::new(0x140));
    }

    #[test]
    fn fresh_entry_reports_no_repeat_stride() {
        // A unit stride right after a cold allocation must not count as a
        // repeat: the fresh entry has no previous stride to repeat.
        let mut t = StrideTable::paper_baseline();
        let out = t.train(Addr::new(0x1000), Addr::new(0x8000));
        assert!(out.cold);
        let out = t.train(Addr::new(0x1000), Addr::new(0x8001));
        assert!(!out.repeat_stride);
    }

    #[test]
    fn tag_distinguishes_far_apart_pcs_in_the_same_set() {
        // PCs 0 and 1<<60 index the same set of the paper table; only the
        // high bits the tag must keep tell them apart.
        let mut t = StrideTable::paper_baseline();
        t.train(Addr::new(1u64 << 60), Addr::new(0x100));
        let out = t.train(Addr::new(0), Addr::new(0x200));
        assert!(out.cold, "distinct pc in the same set must miss");
    }

    #[test]
    fn confirm_for_an_absent_pc_is_a_no_op() {
        let mut t = StrideTable::paper_baseline();
        t.train(Addr::new(0x1000), Addr::new(0x8000));
        // Not resident — and in particular must not fall through to the
        // entry the preceding train() cached.
        t.confirm(Addr::new(0x2000), true);
        let info = t.info(Addr::new(0x1000), Addr::new(0)).expect("resident");
        assert_eq!(info.confidence, 0);
    }
}
