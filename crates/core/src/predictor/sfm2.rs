//! A second-order Stride-Filtered Markov predictor — the extension the
//! paper evaluated and found unnecessary.
//!
//! "We examined using higher order Markov predictors as in [Joseph &
//! Grunwald], but found that it provided little improvement, confirming
//! their results." This module implements an order-2 variant so that
//! claim can be re-verified (`cargo run -p psb-bench --bin ablate_order`).

use crate::predictor::{AllocInfo, MarkovTable, StreamPredictor, StreamState, StrideTable};
use psb_common::{Addr, BlockAddr};
use std::collections::HashMap;

/// Folds a two-block history into a single index key for the underlying
/// delta table.
fn fold(prev2: BlockAddr, prev1: BlockAddr) -> BlockAddr {
    // Shift-xor mixing keeps both addresses' bits in play while remaining
    // a pure function (the hardware analog: concatenating partial
    // addresses into the index hash).
    BlockAddr(prev1.0 ^ (prev2.0.rotate_left(21)))
}

/// An order-2 Stride-Filtered Markov predictor.
///
/// Identical to [`crate::SfmPredictor`] except that the Markov stage is
/// indexed by the last *two* miss addresses. The per-PC history needed
/// for training lives beside the stride table (hardware would widen each
/// stride-table entry by one address); the per-stream history rides in
/// [`StreamState::history`].
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_core::{Sfm2Predictor, StreamPredictor, StreamState};
///
/// let mut p = Sfm2Predictor::paper_baseline();
/// let pc = Addr::new(0x1000);
/// for _ in 0..3 {
///     for a in [0x10_0000u64, 0x12_a040, 0x11_7080] {
///         p.train(pc, Addr::new(a));
///     }
/// }
/// let mut s = StreamState::new(pc, Addr::new(0x12_a040), 32);
/// s.history = 0x10_0000;
/// assert_eq!(p.predict(&mut s), Some(Addr::new(0x11_7080)));
/// ```
#[derive(Clone, Debug)]
pub struct Sfm2Predictor {
    stride: StrideTable,
    markov: MarkovTable,
    /// Per-PC address-before-last (the widened stride-table field).
    prev2: HashMap<u64, Addr>,
    block: u64,
}

impl Sfm2Predictor {
    /// The paper-equivalent geometry: 256-entry stride table, 2K-entry
    /// 16-bit delta table, 32-byte blocks — but order-2 indexing.
    pub fn paper_baseline() -> Self {
        Sfm2Predictor::new(StrideTable::paper_baseline(), MarkovTable::paper_baseline(), 32)
    }

    /// Composes a predictor from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two.
    pub fn new(stride: StrideTable, markov: MarkovTable, block: u64) -> Self {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        Sfm2Predictor { stride, markov, prev2: HashMap::new(), block }
    }

    /// Read-only access to the Markov stage.
    pub fn markov_table(&self) -> &MarkovTable {
        &self.markov
    }
}

impl StreamPredictor for Sfm2Predictor {
    fn train(&mut self, pc: Addr, addr: Addr) {
        let out = self.stride.train(pc, addr);
        let Some(prev1) = out.prev_addr else {
            self.prev2.insert(pc.raw(), addr);
            return;
        };
        let prev2 = self.prev2.insert(pc.raw(), prev1);

        if let Some(prev2) = prev2 {
            let key = fold(prev2.block(self.block), prev1.block(self.block));
            // The delta is stored relative to prev1 (the most recent
            // address), exactly as the order-1 table stores it relative
            // to its index address.
            let markov_correct = self.markov.predict(key).map(|b| b.delta(key))
                == Some(addr.block(self.block).delta(prev1.block(self.block)));
            if !(out.stride_correct || out.repeat_stride) {
                let delta = addr.block(self.block).delta(prev1.block(self.block));
                self.markov.update(key, key.offset(delta));
            }
            self.stride.confirm(pc, out.stride_correct || markov_correct);
        } else {
            self.stride.confirm(pc, out.stride_correct);
        }
    }

    fn alloc_info(&self, pc: Addr, addr: Addr) -> Option<AllocInfo> {
        self.stride.info(pc, addr).map(|i| AllocInfo {
            stride: i.stride,
            confidence: i.confidence,
            two_miss_ok: i.predicted_streak >= 2,
            history: self.prev2.get(&pc.raw()).map_or(0, |a| a.raw()),
        })
    }

    fn predict(&self, state: &mut StreamState) -> Option<Addr> {
        let prev1 = state.last_addr.block(self.block);
        let next = if state.history != 0 {
            let key = fold(Addr::new(state.history).block(self.block), prev1);
            match self.markov.predict(key) {
                Some(b) => prev1.offset(b.delta(key)).base(self.block),
                None => state.last_addr.offset(state.stride),
            }
        } else {
            state.last_addr.offset(state.stride)
        };
        state.history = state.last_addr.raw();
        state.last_addr = next;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order2_disambiguates_shared_successor_states() {
        // Two interleaved chains pass through the same block X but
        // continue differently: A -> X -> B and C -> X -> D. Order-1
        // Markov can only remember one successor of X; order-2 keeps
        // both.
        let (a, x, b) = (0x10_0000u64, 0x12_0040, 0x11_3080);
        let (c, d) = (0x13_00c0u64, 0x14_2100);
        let mut p2 = Sfm2Predictor::paper_baseline();
        let pc = Addr::new(0x1000);
        for _ in 0..3 {
            for v in [a, x, b] {
                p2.train(pc, Addr::new(v));
            }
            for v in [c, x, d] {
                p2.train(pc, Addr::new(v));
            }
        }
        let mut s = StreamState::new(pc, Addr::new(x), 32);
        s.history = a;
        assert_eq!(p2.predict(&mut s), Some(Addr::new(b)), "A,X -> B");
        let mut s = StreamState::new(pc, Addr::new(x), 32);
        s.history = c;
        assert_eq!(p2.predict(&mut s), Some(Addr::new(d)), "C,X -> D");
    }

    #[test]
    fn falls_back_to_stride_without_history() {
        let p = Sfm2Predictor::paper_baseline();
        let mut s = StreamState::new(Addr::new(0x1000), Addr::new(0x8000), 64);
        assert_eq!(p.predict(&mut s), Some(Addr::new(0x8040)));
        // History now primed with the previous address.
        assert_eq!(s.history, 0x8000);
    }

    #[test]
    fn strided_loads_stay_out_of_markov() {
        let mut p = Sfm2Predictor::paper_baseline();
        let pc = Addr::new(0x2000);
        for i in 0..8u64 {
            p.train(pc, Addr::new(0x10_0000 + 128 * i));
        }
        assert!(p.markov_table().updates() <= 1);
    }

    #[test]
    fn alloc_info_carries_history() {
        let mut p = Sfm2Predictor::paper_baseline();
        let pc = Addr::new(0x3000);
        p.train(pc, Addr::new(0x10_0000));
        p.train(pc, Addr::new(0x15_0040));
        p.train(pc, Addr::new(0x11_2080));
        let info = p.alloc_info(pc, Addr::new(0x11_2080)).unwrap();
        assert_eq!(info.history, 0x15_0040, "the address before last");
    }
}
