//! Address predictors that direct stream-buffer prefetching.
//!
//! A stream buffer carries a small *per-stream state* ([`StreamState`]);
//! a shared, *stateless-at-prediction-time* predictor maps that state to
//! the next address in the stream. The predictor's tables are updated only
//! in the write-back stage of missing loads ([`StreamPredictor::train`]),
//! never by predictions — Section 4 of the paper.
//!
//! This module also hosts the self-contained modern engines that plug
//! into the registry as whole [`crate::Prefetcher`]s rather than as
//! stream-buffer predictors: [`PanglossPrefetcher`] and
//! [`DspatchPrefetcher`]. A new engine is one file here plus one
//! registry row (see `crate::registry`).

mod markov;
mod pc_stride;
mod sequential;
mod sfm;
mod sfm2;
mod stride;

pub(crate) mod dspatch;
pub(crate) mod pangloss;

pub use dspatch::DspatchPrefetcher;
pub use markov::MarkovTable;
pub use pangloss::PanglossPrefetcher;
pub use pc_stride::PcStridePredictor;
pub use sequential::SequentialPredictor;
pub use sfm::SfmPredictor;
pub use sfm2::Sfm2Predictor;
pub use stride::{StrideInfo, StrideTable, StrideTrainOutcome};

use psb_common::Addr;

/// The per-stream speculative state stored inside each stream buffer.
///
/// "There are two major parts to PSBs, a per-stream history which is
/// stored with each stream buffer, and a stateless address predictor which
/// is shared between stream buffers."
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StreamState {
    /// PC of the load that allocated the stream.
    pub pc: Addr,
    /// The last (speculatively) predicted address; the next prediction is
    /// generated from it, and it is updated after every prediction.
    pub last_addr: Addr,
    /// The stride assigned at allocation time, in bytes.
    pub stride: i64,
    /// Raw byte address of the stream's step *before* `last_addr`
    /// (0 when unknown). Only history-based predictors (e.g. the order-2
    /// Markov extension) read it; every predictor that advances the
    /// stream keeps it up to date.
    pub history: u64,
}

impl StreamState {
    /// Creates a fresh stream state with no history.
    pub fn new(pc: Addr, last_addr: Addr, stride: i64) -> Self {
        StreamState { pc, last_addr, stride, history: 0 }
    }
}

/// Allocation-time information about a missing load, read from the
/// predictor's tables to drive the allocation filters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AllocInfo {
    /// The stride to seed the stream with, in bytes.
    pub stride: i64,
    /// The load's accuracy confidence counter value.
    pub confidence: u32,
    /// Whether the two-miss filter condition holds (two consecutive
    /// misses that the predictor handled — identical strides for the
    /// stride predictor, correct predictions for SFM).
    pub two_miss_ok: bool,
    /// The miss address recorded before the current one, seeding the
    /// stream's history for history-based predictors (0 when the
    /// predictor keeps none).
    pub history: u64,
}

/// An address predictor that can direct a stream buffer.
///
/// Implementations: [`StrideTable`]-backed PC-stride (the Farkas et al.
/// baseline), [`SfmPredictor`] (the paper's Stride-Filtered Markov), and
/// [`SequentialPredictor`] (Jouppi's next-block streams).
pub trait StreamPredictor {
    /// Trains the predictor on a load that missed in the L1 data cache
    /// (called from the write-back stage). Store-forwarded loads must not
    /// be passed here.
    fn train(&mut self, pc: Addr, addr: Addr);

    /// Reads allocation-time information for a missing load. Returns
    /// `None` when the predictor has no entry for the load (a cold PC).
    fn alloc_info(&self, pc: Addr, addr: Addr) -> Option<AllocInfo>;

    /// Generates the next address of the stream described by `state` and
    /// advances the state. The predictor's own tables are *not* modified.
    ///
    /// At most one call per cycle is made across all stream buffers (the
    /// shared single-ported predictor).
    fn predict(&self, state: &mut StreamState) -> Option<Addr>;

    /// Attaches an observability sink: predictors with internal stages
    /// worth watching (e.g. the SFM's stride filter in front of its
    /// Markov table) register counters here. The default is a no-op.
    fn attach_obs(&mut self, obs: &dyn crate::obs::StreamObs) {
        let _ = obs;
    }
}

/// Clamps a trained stride to something streamable: strides smaller than
/// a cache block become one signed block (Palacharla & Kessler's
/// minimum-delta rule), and zero strides default to the next sequential
/// block.
pub fn normalize_stride(stride: i64, block: u64) -> i64 {
    let block = block as i64;
    if stride == 0 {
        block
    } else if stride.abs() < block {
        block * stride.signum()
    } else {
        stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_stride_rules() {
        assert_eq!(normalize_stride(0, 32), 32);
        assert_eq!(normalize_stride(8, 32), 32);
        assert_eq!(normalize_stride(-8, 32), -32);
        assert_eq!(normalize_stride(32, 32), 32);
        assert_eq!(normalize_stride(-64, 32), -64);
        assert_eq!(normalize_stride(100, 32), 100);
    }
}
