//! DSPatch: the dual spatial-pattern prefetcher (Bera, Nori, Mutlu &
//! Subramoney, MICRO 2019, arXiv:1910.03075).
//!
//! DSPatch learns, per program-counter, *which blocks of a memory region
//! are touched together* — a bit pattern anchored at the region's first
//! ("trigger") access — and keeps **two** patterns per PC instead of
//! one:
//!
//! * **CovP** (coverage-biased): the bitwise **OR** of every observed
//!   pattern. It over-approximates, trading accuracy for coverage —
//!   the right bias when memory bandwidth is to spare.
//! * **AccP** (accuracy-biased): the bitwise **AND** of every observed
//!   pattern. It under-approximates, prefetching only blocks that were
//!   touched *every* time — the right bias under bandwidth pressure.
//!
//! Each pattern carries a 2-bit quality counter measuring how well its
//! predictions matched the pattern actually observed when the region
//! retired; a pattern whose quality collapses is rebuilt from the most
//! recent observation. The paper modulates the CovP/AccP choice with
//! DRAM bandwidth utilization; this single-core model has no bandwidth
//! signal, so selection is by the quality counters alone (prefer the
//! coverage pattern while it stays accurate enough) — noted in
//! DESIGN.md §17.
//!
//! Two structures implement it: a small **page buffer** accumulating the
//! access pattern of each live region (with the trigger PC and offset),
//! and a PC-indexed **signature pattern table** holding the CovP/AccP
//! pair. Patterns are stored rotated so the trigger offset is bit 0,
//! which lets one program pattern predict regions entered at any offset.
//! Prefetched blocks stage in the shared demand-side LRU buffer.
//!
//! # Example
//!
//! ```
//! use psb_common::{Addr, Cycle};
//! use psb_core::{DspatchPrefetcher, Prefetcher, SbLookup, TestSink};
//!
//! // A single-entry page buffer retires each region at the next trigger.
//! let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
//! let mut sink = TestSink::new(1);
//! let pc = Addr::new(0x400);
//! // One PC touches blocks {0, 2, 5} of two different regions...
//! for region in [0x10_0000u64, 0x20_0000] {
//!     for off in [0u64, 2, 5] {
//!         ds.train(Cycle::ZERO, pc, Addr::new(region + off * 32));
//!     }
//! }
//! // ...so triggering a third region replays the learned footprint:
//! ds.train(Cycle::ZERO, pc, Addr::new(0x30_0000));
//! for c in 1..8 {
//!     ds.tick(Cycle::new(c), &mut sink);
//! }
//! assert!(matches!(ds.lookup(Cycle::new(9), Addr::new(0x30_0000 + 2 * 32)), SbLookup::Hit { .. }));
//! ```

use crate::demand::PrefetchBuffer;
use crate::prefetcher::{PrefetchSink, PrefetchStats, Prefetcher, SbLookup};
use crate::registry::EngineDescriptor;
use psb_common::{Addr, BlockAddr, Cycle, SatCounter};
use std::collections::VecDeque;

/// The registry row for the baseline DSPatch configuration.
pub(crate) const DESCRIPTOR: EngineDescriptor = EngineDescriptor {
    name: "dspatch",
    label: "DSPatch",
    paper: false,
    build: || Box::new(DspatchPrefetcher::baseline()),
};

/// Blocks per region: patterns are `u64` bit maps, one bit per block.
const REGION_BLOCKS: u64 = 64;

/// One live region in the page buffer.
#[derive(Copy, Clone, Debug)]
struct PageBufferEntry {
    /// Region number (block address / [`REGION_BLOCKS`]).
    region: u64,
    /// Accessed-block bit pattern, bit `i` = block `i` of the region.
    pattern: u64,
    /// PC of the region's trigger (first) access.
    trigger_pc: Addr,
    /// Block offset of the trigger access within the region.
    trigger_offset: u32,
    lru: u64,
    valid: bool,
}

/// One signature-pattern-table entry: the dual patterns for a PC.
///
/// Both patterns are *anchored*: rotated right by the trigger offset, so
/// bit 0 is the trigger block and bit `i` is the block `i` after it
/// (wrapping within the region).
#[derive(Clone, Debug)]
struct SptEntry {
    tag: u64,
    /// Coverage-biased pattern (OR of observations).
    covp: u64,
    /// Accuracy-biased pattern (AND of observations).
    accp: u64,
    /// Quality of CovP's last predictions (2-bit saturating).
    covp_quality: SatCounter,
    /// Quality of AccP's last predictions (2-bit saturating).
    accp_quality: SatCounter,
    valid: bool,
}

/// The dual spatial-pattern prefetcher.
#[derive(Clone, Debug)]
pub struct DspatchPrefetcher {
    page_buffer: Vec<PageBufferEntry>,
    spt: Vec<SptEntry>,
    buffer: PrefetchBuffer,
    pending: VecDeque<BlockAddr>,
    block: u64,
    degree: usize,
    stamp: u64,
    stats: PrefetchStats,
}

impl DspatchPrefetcher {
    /// The baseline configuration: 32-byte blocks (64-block = 2 KB
    /// regions), 32 live regions, a 256-entry pattern table, prefetch
    /// degree 8, 32-entry staging buffer.
    pub fn baseline() -> Self {
        DspatchPrefetcher::new(32, 32, 256, 8, 32)
    }

    /// Creates a DSPatch prefetcher over `block`-byte lines with
    /// `page_entries` live regions, `spt_entries` pattern-table slots, at
    /// most `degree` prefetches per trigger, and a `buffer`-entry staging
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics when `block` is not a power of two or any capacity is zero.
    pub fn new(
        block: u64,
        page_entries: usize,
        spt_entries: usize,
        degree: usize,
        buffer: usize,
    ) -> Self {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        assert!(page_entries > 0 && spt_entries > 0 && degree > 0, "zero-sized DSPatch structure");
        DspatchPrefetcher {
            page_buffer: vec![
                PageBufferEntry {
                    region: 0,
                    pattern: 0,
                    trigger_pc: Addr::new(0),
                    trigger_offset: 0,
                    lru: 0,
                    valid: false
                };
                page_entries
            ],
            spt: vec![
                SptEntry {
                    tag: 0,
                    covp: 0,
                    accp: 0,
                    covp_quality: SatCounter::with_value(3, 2),
                    accp_quality: SatCounter::with_value(3, 2),
                    valid: false
                };
                spt_entries
            ],
            buffer: PrefetchBuffer::new(buffer),
            pending: VecDeque::new(),
            block,
            degree,
            stamp: 0,
            stats: PrefetchStats::default(),
        }
    }

    /// Pattern-table index and tag for a PC (XOR-folded, as markov.rs).
    fn spt_index(&self, pc: Addr) -> (usize, u64) {
        let h = pc.raw() ^ (pc.raw() >> 11) ^ (pc.raw() >> 22);
        let n = self.spt.len() as u64;
        ((h % n) as usize, h / n)
    }

    /// Retires a closed region: folds its observed pattern into the
    /// trigger PC's dual patterns and scores the previous predictions.
    fn close_region(&mut self, e: PageBufferEntry) {
        // Anchor at the trigger: rotate so the trigger block is bit 0.
        let observed = e.pattern.rotate_right(e.trigger_offset);
        let (idx, tag) = self.spt_index(e.trigger_pc);
        let s = &mut self.spt[idx];
        if !s.valid || s.tag != tag {
            *s = SptEntry {
                tag,
                covp: observed,
                accp: observed,
                // A brand-new pattern starts weakly confident, the
                // bimodal convention.
                covp_quality: SatCounter::with_value(3, 2),
                accp_quality: SatCounter::with_value(3, 2),
                valid: true,
            };
            return;
        }
        // Score each pattern against what the region actually touched:
        // good when at least half of its predicted blocks were used.
        for (pattern, quality) in [(s.covp, &mut s.covp_quality), (s.accp, &mut s.accp_quality)] {
            let predicted = (pattern & !1).count_ones();
            let used = (pattern & !1 & observed).count_ones();
            if predicted == 0 || used * 2 >= predicted {
                quality.inc();
            } else {
                quality.dec();
            }
        }
        // A collapsed pattern is rebuilt from the latest observation
        // instead of dragging stale bits along (the paper's pattern
        // reset), with its confidence restored to weakly-high;
        // otherwise apply the dual bias updates.
        if s.covp_quality.get() == 0 {
            s.covp = observed;
            s.covp_quality.set(2);
        } else {
            s.covp |= observed;
        }
        if s.accp_quality.get() == 0 {
            s.accp = observed;
            s.accp_quality.set(2);
        } else {
            s.accp &= observed;
        }
    }

    /// Queues the learned footprint for a freshly triggered region.
    fn predict(&mut self, pc: Addr, region: u64, trigger_offset: u32) {
        let (idx, tag) = self.spt_index(pc);
        let s = &self.spt[idx];
        if !s.valid || s.tag != tag {
            return;
        }
        // Dual-pattern selection: coverage while it stays accurate
        // enough, accuracy once CovP's quality drops (the paper would
        // also consult DRAM bandwidth headroom here).
        let pattern = if s.covp_quality.is_high() || s.covp_quality.get() >= s.accp_quality.get() {
            s.covp
        } else {
            s.accp
        };
        let region_base = BlockAddr(region * REGION_BLOCKS);
        let mut queued = 0;
        // Bit i of the anchored pattern = the block i after the trigger
        // (wrapping within the region); walk outward from the trigger.
        for i in 1..REGION_BLOCKS as u32 {
            if queued >= self.degree {
                break;
            }
            if pattern & (1u64 << i) == 0 {
                continue;
            }
            let offset = (trigger_offset + i) % REGION_BLOCKS as u32;
            let target = region_base.offset(offset as i64);
            self.stats.predictions += 1;
            if self.buffer.contains(target) || self.pending.contains(&target) {
                self.stats.suppressed += 1;
            } else {
                self.pending.push_back(target);
                queued += 1;
            }
        }
    }
}

impl Prefetcher for DspatchPrefetcher {
    fn lookup(&mut self, now: Cycle, addr: Addr) -> SbLookup {
        self.stats.lookups += 1;
        let block = addr.block(self.block);
        if let Some(e) = self.buffer.take(block) {
            self.stats.hits += 1;
            self.stats.used += 1;
            SbLookup::Hit { ready: e.ready.max(now) }
        } else {
            SbLookup::Miss
        }
    }

    fn train(&mut self, _now: Cycle, pc: Addr, addr: Addr) {
        let block = addr.block(self.block);
        let region = block.0 / REGION_BLOCKS;
        let offset = (block.0 % REGION_BLOCKS) as u32;
        self.stamp += 1;
        if let Some(e) = self.page_buffer.iter_mut().find(|e| e.valid && e.region == region) {
            e.pattern |= 1u64 << offset;
            e.lru = self.stamp;
            return;
        }
        // Region trigger: retire the LRU region, predict, then track.
        let victim = self
            .page_buffer
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.valid, e.lru))
            .map(|(i, _)| i)
            .expect("invariant: page_entries > 0 keeps the page buffer non-empty");
        let evicted = self.page_buffer[victim];
        if evicted.valid {
            self.close_region(evicted);
        }
        self.predict(pc, region, offset);
        self.page_buffer[victim] = PageBufferEntry {
            region,
            pattern: 1u64 << offset,
            trigger_pc: pc,
            trigger_offset: offset,
            lru: self.stamp,
            valid: true,
        };
    }

    fn allocate(&mut self, _now: Cycle, _pc: Addr, _addr: Addr) {}

    fn tick(&mut self, now: Cycle, sink: &mut dyn PrefetchSink) {
        if !sink.bus_free(now) {
            return;
        }
        let Some(block) = self.pending.pop_front() else {
            return;
        };
        let ready = sink.fetch(now, block.base(self.block));
        self.buffer.insert(block, ready);
        self.stats.issued += 1;
    }

    fn quiescent(&self) -> bool {
        // An empty queue makes `tick` an observable no-op; only the
        // miss path (`lookup`/`train`), which clears the simulator's
        // idle shortcut first, can refill it.
        self.pending.is_empty()
    }

    fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn name(&self) -> &str {
        "dspatch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::TestSink;

    fn drain(ds: &mut DspatchPrefetcher, sink: &mut TestSink, from: u64, cycles: u64) {
        for c in from..from + cycles {
            ds.tick(Cycle::new(c), sink);
        }
    }

    /// Touch blocks `offs` of the region at `base` (region-aligned).
    fn touch(ds: &mut DspatchPrefetcher, pc: Addr, base: u64, offs: &[u64]) {
        for &o in offs {
            ds.train(Cycle::ZERO, pc, Addr::new(base + o * 32));
        }
    }

    #[test]
    fn learned_footprint_replays_on_new_region() {
        let mut ds = DspatchPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        let pc = Addr::new(0x400);
        touch(&mut ds, pc, 0x10_0000, &[0, 2, 5]);
        touch(&mut ds, pc, 0x20_0000, &[0, 2, 5]);
        // Patterns fold into the SPT only when a region retires from the
        // 32-entry page buffer, so drive enough further regions to evict
        // the two above.
        for r in 0..33u64 {
            touch(&mut ds, pc, 0x100_0000 + r * 2048, &[0, 2, 5]);
        }
        ds.pending.clear();
        // Now the SPT knows {+2, +5}; a fresh trigger replays it.
        ds.train(Cycle::ZERO, pc, Addr::new(0x30_0000));
        drain(&mut ds, &mut sink, 1, 8);
        assert!(sink.fetched.contains(&Addr::new(0x30_0000 + 2 * 32)), "{:?}", sink.fetched);
        assert!(sink.fetched.contains(&Addr::new(0x30_0000 + 5 * 32)), "{:?}", sink.fetched);
        assert!(matches!(
            ds.lookup(Cycle::new(20), Addr::new(0x30_0000 + 2 * 32)),
            SbLookup::Hit { .. }
        ));
    }

    #[test]
    fn anchoring_translates_patterns_to_any_trigger_offset() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        let mut sink = TestSink::new(1);
        let pc = Addr::new(0x8000);
        // Single-entry page buffer: every new region retires the last.
        // Learn the footprint {trigger, trigger+3} from offset-0 regions.
        touch(&mut ds, pc, 0x10_0000, &[0, 3]);
        touch(&mut ds, pc, 0x20_0000, &[0, 3]);
        touch(&mut ds, pc, 0x30_0000, &[0, 3]);
        ds.pending.clear();
        // Enter a region at offset 10: the anchored pattern predicts
        // offset 13 — translation, not absolute bit replay.
        ds.train(Cycle::ZERO, pc, Addr::new(0x40_0000 + 10 * 32));
        drain(&mut ds, &mut sink, 1, 4);
        assert!(sink.fetched.contains(&Addr::new(0x40_0000 + 13 * 32)), "{:?}", sink.fetched);
    }

    #[test]
    fn covp_unions_and_accp_intersects() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        let pc = Addr::new(0x100);
        // Region A touches {0,1,2}; region B {0,2,4}; C retires B.
        touch(&mut ds, pc, 0x10_0000, &[0, 1, 2]);
        touch(&mut ds, pc, 0x20_0000, &[0, 2, 4]);
        touch(&mut ds, pc, 0x30_0000, &[0]);
        let (idx, _) = ds.spt_index(pc);
        let s = &ds.spt[idx];
        assert_eq!(s.covp, 0b10111, "CovP is the union of observations");
        assert_eq!(s.accp, 0b00101, "AccP is the intersection");
    }

    #[test]
    fn collapsed_covp_is_rebuilt_from_latest_observation() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        let pc = Addr::new(0x200);
        // First region sets a wide pattern; later regions touch only the
        // trigger, so CovP keeps predicting dead blocks and its quality
        // drains to zero — then the pattern resets to the observation.
        touch(&mut ds, pc, 0x10_0000, &[0, 1, 2, 3, 4, 5, 6, 7]);
        for r in 1..8u64 {
            touch(&mut ds, pc, 0x10_0000 + r * 2048, &[0]);
        }
        let (idx, _) = ds.spt_index(pc);
        let s = &ds.spt[idx];
        assert_eq!(s.covp, 1, "collapsed CovP rebuilt from the latest observation");
    }

    #[test]
    fn pattern_conflict_on_spt_tag_mismatch_resets_entry() {
        let mut ds = DspatchPrefetcher::new(32, 1, 4, 8, 32);
        // Two PCs that alias the same 4-entry SPT slot with different
        // tags: the second evicts the first's patterns.
        let (idx_a, _) = ds.spt_index(Addr::new(0x0));
        let pc_b = (1..)
            .map(|i| Addr::new(i * 4 * 0x1000))
            .find(|pc| {
                ds.spt_index(*pc).0 == idx_a && ds.spt_index(*pc).1 != ds.spt_index(Addr::new(0)).1
            })
            .unwrap();
        // Establish a *valid* entry for PC A first (several closes), so
        // the reset below exercises the tag-mismatch arm, not the
        // invalid-entry arm.
        touch(&mut ds, Addr::new(0), 0x10_0000, &[0, 1]);
        touch(&mut ds, Addr::new(0), 0x20_0000, &[0, 1]); // retires A's first region
        touch(&mut ds, Addr::new(0), 0x30_0000, &[0, 1]); // retires A's second
        assert!(ds.spt[idx_a].valid);
        touch(&mut ds, pc_b, 0x40_0000, &[0, 5]); // retires A's third
        touch(&mut ds, pc_b, 0x50_0000, &[0]); // retires B's region under B's tag
        let s = &ds.spt[idx_a];
        assert_eq!(s.covp, 0b100001, "aliasing PC replaced the entry, not merged into it");
        assert_eq!(s.accp, 0b100001);
        // A full reset also restores the weakly-confident 2-of-3 quality.
        assert_eq!((s.covp_quality.get(), s.covp_quality.max()), (2, 3));
        assert_eq!((s.accp_quality.get(), s.accp_quality.max()), (2, 3));
    }

    #[test]
    fn degree_caps_prefetches_per_trigger() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 4, 32);
        let mut sink = TestSink::new(1);
        let pc = Addr::new(0x300);
        let all: Vec<u64> = (0..32).collect();
        touch(&mut ds, pc, 0x10_0000, &all);
        touch(&mut ds, pc, 0x20_0000, &all);
        touch(&mut ds, pc, 0x30_0000, &all);
        ds.pending.clear();
        ds.train(Cycle::ZERO, pc, Addr::new(0x50_0000));
        assert_eq!(ds.pending.len(), 4, "degree bounds the burst");
        drain(&mut ds, &mut sink, 1, 16);
        // Nearest blocks after the trigger come first.
        assert_eq!(sink.fetched, (1..5).map(|i| Addr::new(0x50_0000 + i * 32)).collect::<Vec<_>>());
    }

    #[test]
    fn quiescent_exactly_when_queue_is_empty() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        assert!(ds.quiescent(), "fresh engine has nothing to do");
        let pc = Addr::new(0x700);
        touch(&mut ds, pc, 0x10_0000, &[0, 1]);
        touch(&mut ds, pc, 0x20_0000, &[0, 1]);
        touch(&mut ds, pc, 0x30_0000, &[0]);
        assert!(!ds.quiescent(), "queued predictions demand ticks");
        let mut sink = TestSink::new(1);
        drain(&mut ds, &mut sink, 1, 16);
        assert!(ds.quiescent(), "drained queue goes idle again");
        let before = (ds.stats(), sink.fetched.len());
        ds.tick(Cycle::new(99), &mut sink);
        assert_eq!((ds.stats(), sink.fetched.len()), before, "idle tick is unobservable");
    }

    #[test]
    fn bus_gating_respected() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        let mut sink = TestSink::new(1);
        sink.bus_is_free = false;
        let pc = Addr::new(0x900);
        touch(&mut ds, pc, 0x10_0000, &[0, 2]);
        touch(&mut ds, pc, 0x20_0000, &[0, 2]);
        touch(&mut ds, pc, 0x30_0000, &[0]);
        drain(&mut ds, &mut sink, 1, 8);
        assert_eq!(ds.stats().issued, 0);
        sink.bus_is_free = true;
        drain(&mut ds, &mut sink, 9, 1);
        assert_eq!(ds.stats().issued, 1);
    }

    #[test]
    #[should_panic(expected = "zero-sized DSPatch structure")]
    fn zero_degree_panics() {
        DspatchPrefetcher::new(32, 32, 256, 0, 32);
    }

    #[test]
    #[should_panic(expected = "zero-sized DSPatch structure")]
    fn zero_page_entries_panics() {
        DspatchPrefetcher::new(32, 0, 256, 8, 32);
    }

    #[test]
    #[should_panic(expected = "zero-sized DSPatch structure")]
    fn zero_spt_entries_panics() {
        DspatchPrefetcher::new(32, 32, 0, 8, 32);
    }

    #[test]
    fn minimal_configuration_constructs() {
        let ds = DspatchPrefetcher::new(32, 1, 1, 1, 1);
        assert_eq!((ds.page_buffer.len(), ds.spt.len(), ds.degree), (1, 1, 1));
    }

    #[test]
    fn baseline_configuration_is_pinned() {
        let ds = DspatchPrefetcher::baseline();
        assert_eq!(ds.page_buffer.len(), 32);
        assert_eq!(ds.spt.len(), 256);
        assert_eq!(ds.degree, 8);
        assert_eq!(ds.block, 32);
        assert_eq!(ds.buffer.capacity(), 32);
        // The fresh state is fully zeroed, with every invalid SPT slot
        // carrying the weakly-confident 2-of-3 bimodal quality.
        assert_eq!(ds.stamp, 0);
        for e in &ds.page_buffer {
            assert!(!e.valid);
            assert_eq!(
                (e.region, e.pattern, e.trigger_pc.raw(), e.trigger_offset, e.lru),
                (0, 0, 0, 0, 0)
            );
        }
        for s in &ds.spt {
            assert!(!s.valid);
            assert_eq!((s.tag, s.covp, s.accp), (0, 0, 0));
            assert_eq!((s.covp_quality.get(), s.covp_quality.max()), (2, 3));
            assert_eq!((s.accp_quality.get(), s.accp_quality.max()), (2, 3));
        }
    }

    #[test]
    fn regions_span_64_blocks_and_triggers_anchor_the_pattern() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        let pc = Addr::new(0x500);
        // Offsets 0 and 63 land in one region: one live entry, both bits.
        touch(&mut ds, pc, 0x10_0000, &[0, 63]);
        let e = &ds.page_buffer[0];
        assert!(e.valid);
        assert_eq!(e.region, 0x10_0000 / 32 / 64);
        assert_eq!(e.pattern, 1 | 1 << 63);
        assert_eq!(e.trigger_offset, 0);
        // A non-zero trigger offset seeds the new entry's bit map.
        ds.train(Cycle::ZERO, pc, Addr::new(0x20_0000 + 10 * 32));
        let e = &ds.page_buffer[0];
        assert_eq!(e.pattern, 1 << 10);
        assert_eq!(e.trigger_offset, 10);
    }

    #[test]
    fn spt_hash_xor_folds_the_pc() {
        let ds = DspatchPrefetcher::baseline();
        for pc in [0x1234_5678_9abcu64, 0xdead_beef_0042, 0x7f0f_3355_aa11] {
            let h = pc ^ (pc >> 11) ^ (pc >> 22);
            assert_eq!(ds.spt_index(Addr::new(pc)), ((h % 256) as usize, h / 256));
        }
    }

    #[test]
    fn quality_counters_score_each_retired_region() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        let pc = Addr::new(0x100);
        let q = |ds: &DspatchPrefetcher| {
            let (idx, _) = ds.spt_index(pc);
            let s = &ds.spt[idx];
            (s.covp_quality.get(), s.accp_quality.get())
        };
        let entry = |ds: &DspatchPrefetcher| {
            let (idx, _) = ds.spt_index(pc);
            (ds.spt[idx].covp, ds.spt[idx].accp)
        };
        let wide: Vec<u64> = (0..8).collect();
        touch(&mut ds, pc, 0x10_0000, &wide);
        touch(&mut ds, pc, 0x20_0000, &wide); // closes r1: fresh entry
        assert_eq!(q(&ds), (2, 2), "a fresh entry starts weakly confident");
        // r2 fully used both patterns' 7 predictions: both inc.
        touch(&mut ds, pc, 0x30_0000, &[0, 1, 2, 3, 4]);
        assert_eq!(q(&ds), (3, 3));
        // r3 used 4 of 7: exactly half rounds in the pattern's favor.
        touch(&mut ds, pc, 0x40_0000, &[0, 2, 4, 6]);
        assert_eq!(q(&ds), (3, 3));
        // r4 used 3 of CovP's 7 (dec) but 2 of AccP's 4 (the >= boundary
        // holds: inc).
        touch(&mut ds, pc, 0x50_0000, &[0]);
        assert_eq!(q(&ds), (2, 3));
        assert_eq!(entry(&ds), (0xFF, 0b10101));
        // r5 was trigger-only: both over-predicted, both dec.
        touch(&mut ds, pc, 0x60_0000, &[0]);
        assert_eq!(q(&ds), (1, 2));
        assert_eq!(entry(&ds), (0xFF, 1), "one bad region does not yet reset CovP");
        // r6 trigger-only again: CovP collapses to 0 and is rebuilt from
        // the observation; AccP now predicts nothing, which scores as
        // vacuously right.
        touch(&mut ds, pc, 0x70_0000, &[0]);
        assert_eq!(q(&ds), (2, 3));
        assert_eq!(entry(&ds), (1, 1), "collapsed CovP rebuilt from the last observation");
    }

    #[test]
    fn collapsed_accp_is_rebuilt_from_latest_observation() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        let pc = Addr::new(0x200);
        touch(&mut ds, pc, 0x10_0000, &[0, 1, 2, 3, 4]);
        touch(&mut ds, pc, 0x20_0000, &[0, 1, 5]); // closes r1: fresh entry
        touch(&mut ds, pc, 0x30_0000, &[0, 5]); // closes r2: AccP dec, narrows to {0,1}
        touch(&mut ds, pc, 0x40_0000, &[0]); // closes r3: AccP's {1} unused -> collapse
        let (idx, _) = ds.spt_index(pc);
        let s = &ds.spt[idx];
        assert_eq!(s.accp, 0b100001, "collapsed AccP rebuilt from the latest observation");
        assert_eq!(s.accp_quality.get(), 2, "the rebuild restores weak confidence");
    }

    #[test]
    fn tag_mismatch_predicts_nothing() {
        let mut ds = DspatchPrefetcher::new(32, 1, 4, 8, 32);
        let (idx_a, _) = ds.spt_index(Addr::new(0x0));
        let pc_b = (1..)
            .map(|i| Addr::new(i * 4 * 0x1000))
            .find(|pc| {
                ds.spt_index(*pc).0 == idx_a && ds.spt_index(*pc).1 != ds.spt_index(Addr::new(0)).1
            })
            .unwrap();
        touch(&mut ds, Addr::new(0), 0x10_0000, &[0, 3]);
        touch(&mut ds, Addr::new(0), 0x20_0000, &[0, 3]); // A's entry goes valid
        ds.pending.clear();
        // B aliases the slot under a different tag: its trigger must not
        // replay A's footprint.
        ds.train(Cycle::ZERO, pc_b, Addr::new(0x30_0000));
        assert!(ds.pending.is_empty(), "mismatched tag replayed a pattern: {:?}", ds.pending);
    }

    #[test]
    fn covp_wins_quality_ties_over_accp() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        let pc = Addr::new(0x600);
        touch(&mut ds, pc, 0x10_0000, &[0, 1]);
        touch(&mut ds, pc, 0x20_0000, &[0, 2]); // closes r1: fresh {0,1} entry
        ds.pending.clear();
        // Closing r2 decs both qualities to 1 (the {+1} prediction went
        // unused), widens CovP to {0,1,2} and narrows AccP to {0}. The
        // tie at low quality must still pick the coverage pattern.
        ds.train(Cycle::ZERO, pc, Addr::new(0x30_0000));
        let (idx, _) = ds.spt_index(pc);
        let s = &ds.spt[idx];
        assert_eq!((s.covp_quality.get(), s.accp_quality.get()), (1, 1));
        assert_eq!((s.covp, s.accp), (0b111, 0b001));
        let want: Vec<BlockAddr> =
            [1u64, 2].iter().map(|i| BlockAddr(0x30_0000 / 32 + i)).collect();
        let got: Vec<BlockAddr> = ds.pending.iter().copied().collect();
        assert_eq!(got, want, "the quality tie must replay CovP");
    }

    #[test]
    fn repeated_triggers_suppress_queued_duplicates() {
        let mut ds = DspatchPrefetcher::new(32, 1, 256, 8, 32);
        let pc = Addr::new(0x700);
        touch(&mut ds, pc, 0x10_0000, &[0, 3]);
        touch(&mut ds, pc, 0x20_0000, &[0, 3]); // closes r1: entry {0,3}
        ds.pending.clear();
        ds.stats = PrefetchStats::default();
        touch(&mut ds, pc, 0x40_0000, &[0, 3]); // predicts +3, then touches it
        touch(&mut ds, pc, 0x50_0000, &[0, 3]); // evicts, predicts +3 again
        ds.train(Cycle::ZERO, pc, Addr::new(0x40_0000)); // re-trigger: +3 still queued
        let s = ds.stats();
        assert_eq!((s.predictions, s.suppressed), (3, 1));
        let uniq: std::collections::HashSet<_> = ds.pending.iter().collect();
        assert_eq!(uniq.len(), ds.pending.len(), "duplicate queued: {:?}", ds.pending);
    }

    #[test]
    fn lookup_stats_count_misses_and_hits() {
        let mut ds = DspatchPrefetcher::baseline();
        let mut sink = TestSink::new(1);
        assert!(matches!(ds.lookup(Cycle::new(1), Addr::new(0x1000)), SbLookup::Miss));
        let s = ds.stats();
        assert_eq!((s.lookups, s.hits, s.used), (1, 0, 0));
        ds.pending.push_back(Addr::new(0x2000).block(32));
        ds.tick(Cycle::new(2), &mut sink);
        assert!(matches!(ds.lookup(Cycle::new(3), Addr::new(0x2000)), SbLookup::Hit { .. }));
        let s = ds.stats();
        assert_eq!((s.lookups, s.hits, s.used), (2, 1, 1));
    }

    #[test]
    fn reused_region_survives_lru_eviction() {
        let mut ds = DspatchPrefetcher::new(32, 2, 256, 8, 32);
        let pc = Addr::new(0x800);
        touch(&mut ds, pc, 0x10_0000, &[0]); // A
        touch(&mut ds, pc, 0x20_0000, &[0]); // B
        touch(&mut ds, pc, 0x10_0000, &[1]); // refresh A
        touch(&mut ds, pc, 0x30_0000, &[0]); // evicts B, the true LRU
        let regions: Vec<u64> =
            ds.page_buffer.iter().filter(|e| e.valid).map(|e| e.region).collect();
        assert!(regions.contains(&(0x10_0000 / 32 / 64)), "refreshed region evicted: {regions:?}");
        assert!(!regions.contains(&(0x20_0000 / 32 / 64)), "stale region kept: {regions:?}");
    }
}
