//! The Stride-Filtered Markov (SFM) predictor — the predictor the paper
//! uses to direct its stream buffers.

use crate::obs::StreamObs;
use crate::predictor::{AllocInfo, MarkovTable, StreamPredictor, StreamState, StrideTable};
use psb_common::metrics::Counter;
use psb_common::Addr;

/// A two-delta stride table in front of a differential Markov table
/// (Figure 3 of the paper).
///
/// **Training** (write-back stage, missing loads only): the load PC
/// indexes the stride table. "If the stride calculated by (current miss
/// address − last address) does not match the last stride or 2-delta
/// stride, then the Markov table is updated noting the transition from
/// last address to current address." The per-PC accuracy confidence is
/// "incremented every time the load's update address matches the
/// prediction of the stride or Markov table, and decremented when it does
/// not match."
///
/// **Prediction** (one per cycle, shared among stream buffers): "the last
/// address is (1) looked up in the Markov table, and (2) used to calculate
/// a next stride address. If the Markov table hits, then the Markov
/// address is used, otherwise the next stride address is used." The
/// stream's own `last_addr` advances; the tables are untouched.
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_core::{SfmPredictor, StreamPredictor, StreamState};
///
/// let mut p = SfmPredictor::paper_baseline();
/// let pc = Addr::new(0x1000);
/// // A repeating pointer-chase miss pattern (non-strided):
/// for _ in 0..2 {
///     for a in [0x8000u64, 0x13040, 0xb020, 0x22060] {
///         p.train(pc, Addr::new(a));
///     }
/// }
/// // The stream now follows the chain through the Markov table:
/// let mut s = StreamState::new(pc, Addr::new(0x8000), 32);
/// assert_eq!(p.predict(&mut s), Some(Addr::new(0x13040)));
/// assert_eq!(p.predict(&mut s), Some(Addr::new(0xb020)));
/// ```
#[derive(Clone, Debug)]
pub struct SfmPredictor {
    stride: StrideTable,
    markov: MarkovTable,
    block: u64,
    /// Training updates the stride filter absorbed (kept out of Markov).
    obs_stride_filtered: Option<Counter>,
    /// Training updates that landed in the Markov table.
    obs_markov_trained: Option<Counter>,
}

impl SfmPredictor {
    /// The paper's configuration: 256-entry 4-way stride table filtering a
    /// 2K-entry 16-bit differential Markov table, over 32-byte blocks.
    pub fn paper_baseline() -> Self {
        SfmPredictor::new(StrideTable::paper_baseline(), MarkovTable::paper_baseline(), 32)
    }

    /// Composes a predictor from its parts. `block` is the cache block
    /// size in bytes (predictions are made at block granularity).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two.
    pub fn new(stride: StrideTable, markov: MarkovTable, block: u64) -> Self {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        SfmPredictor { stride, markov, block, obs_stride_filtered: None, obs_markov_trained: None }
    }

    /// Read-only access to the stride stage.
    pub fn stride_table(&self) -> &StrideTable {
        &self.stride
    }

    /// Read-only access to the Markov stage.
    pub fn markov_table(&self) -> &MarkovTable {
        &self.markov
    }

    /// Block size in bytes.
    pub fn block(&self) -> u64 {
        self.block
    }
}

impl StreamPredictor for SfmPredictor {
    fn train(&mut self, pc: Addr, addr: Addr) {
        let out = self.stride.train(pc, addr);
        let Some(prev) = out.prev_addr else {
            return; // first sighting of this PC: nothing to correlate yet
        };
        let prev_block = prev.block(self.block);
        let addr_block = addr.block(self.block);
        let markov_correct = self.markov.predict(prev_block) == Some(addr_block);
        if out.stride_correct || out.repeat_stride {
            if let Some(c) = &self.obs_stride_filtered {
                c.inc();
            }
        } else {
            self.markov.update(prev_block, addr_block);
            if let Some(c) = &self.obs_markov_trained {
                c.inc();
            }
        }
        self.stride.confirm(pc, out.stride_correct || markov_correct);
    }

    fn alloc_info(&self, pc: Addr, addr: Addr) -> Option<AllocInfo> {
        self.stride.info(pc, addr).map(|i| AllocInfo {
            stride: i.stride,
            confidence: i.confidence,
            // The paper's generalized two-miss filter: "two cache misses
            // in a row, and both times the load would have been correctly
            // predicted using the stride predictor or the Markov
            // predictor".
            two_miss_ok: i.predicted_streak >= 2,
            history: 0,
        })
    }

    fn predict(&self, state: &mut StreamState) -> Option<Addr> {
        let cur_block = state.last_addr.block(self.block);
        let next = match self.markov.predict(cur_block) {
            Some(b) => b.base(self.block),
            None => state.last_addr.offset(state.stride),
        };
        state.history = state.last_addr.raw();
        state.last_addr = next;
        Some(next)
    }

    fn attach_obs(&mut self, obs: &dyn StreamObs) {
        self.obs_stride_filtered = Some(obs.counter("sfm.train.stride_filtered"));
        self.obs_markov_trained = Some(obs.counter("sfm.train.markov_updates"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_common::BlockAddr;

    fn train_seq(p: &mut SfmPredictor, pc: u64, addrs: &[u64]) {
        for &a in addrs {
            p.train(Addr::new(pc), Addr::new(a));
        }
    }

    #[test]
    fn strided_loads_stay_out_of_markov() {
        let mut p = SfmPredictor::paper_baseline();
        train_seq(&mut p, 0x1000, &[0x8000, 0x8040, 0x8080, 0x80c0, 0x8100]);
        // Strides matched: at most the first (cold->second) transition may
        // have landed in the Markov table.
        assert!(p.markov_table().updates() <= 1, "updates = {}", p.markov_table().updates());
        // Predictions fall through to the stride path.
        let mut s = StreamState::new(Addr::new(0x1000), Addr::new(0x8100), 64);
        assert_eq!(p.predict(&mut s), Some(Addr::new(0x8140)));
    }

    #[test]
    fn pointer_chase_lands_in_markov_and_replays() {
        let mut p = SfmPredictor::paper_baseline();
        let chain = [0x10000u64, 0x2a040, 0x17080, 0x330c0, 0x10000];
        train_seq(&mut p, 0x2000, &chain);
        train_seq(&mut p, 0x2000, &chain[1..]); // revisit to stabilize
        let mut s = StreamState::new(Addr::new(0x2000), Addr::new(0x10000), 32);
        let walked: Vec<u64> = (0..4).map(|_| p.predict(&mut s).unwrap().raw()).collect();
        assert_eq!(walked, vec![0x2a040, 0x17080, 0x330c0, 0x10000]);
    }

    #[test]
    fn markov_hit_overrides_stride() {
        let mut p = SfmPredictor::paper_baseline();
        // Record a transition from block A to an unrelated block B.
        let a = Addr::new(0x50000);
        let b = Addr::new(0x91000);
        train_seq(&mut p, 0x3000, &[a.raw(), b.raw(), a.raw(), b.raw()]);
        let mut s = StreamState::new(Addr::new(0x3000), a, 32);
        assert_eq!(p.predict(&mut s), Some(b.block_base(32)));
    }

    #[test]
    fn stride_fallback_when_markov_cold() {
        let p = SfmPredictor::paper_baseline();
        let mut s = StreamState::new(Addr::new(0x4000), Addr::new(0x1000), 96);
        assert_eq!(p.predict(&mut s), Some(Addr::new(0x1060)));
        assert_eq!(p.predict(&mut s), Some(Addr::new(0x10c0)));
    }

    #[test]
    fn confidence_rises_for_markov_predictable_loads() {
        let mut p = SfmPredictor::paper_baseline();
        let chain = [0x10000u64, 0x2a040, 0x17080, 0x330c0];
        // Repeat the chase several times: after the first lap the Markov
        // table predicts every step, so confidence must climb even though
        // strides never repeat.
        for _ in 0..5 {
            train_seq(&mut p, 0x5000, &chain);
        }
        let info = p.alloc_info(Addr::new(0x5000), Addr::new(0x330c0)).unwrap();
        assert!(info.confidence >= 4, "confidence = {}", info.confidence);
        assert!(info.two_miss_ok);
    }

    #[test]
    fn confidence_stays_low_for_random_loads() {
        let mut p = SfmPredictor::paper_baseline();
        let mut x = 0x12345u64;
        for _ in 0..30 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.train(Addr::new(0x6000), Addr::new((x >> 16) & 0xffff_ffe0));
        }
        let info = p.alloc_info(Addr::new(0x6000), Addr::new(0)).unwrap();
        assert!(info.confidence <= 1, "confidence = {}", info.confidence);
        assert!(!info.two_miss_ok);
    }

    #[test]
    fn predictions_do_not_mutate_tables() {
        let mut p = SfmPredictor::paper_baseline();
        train_seq(&mut p, 0x7000, &[0x1000, 0x9000, 0x1000, 0x9000]);
        let updates_before = p.markov_table().updates();
        let mut s = StreamState::new(Addr::new(0x7000), Addr::new(0x1000), 32);
        for _ in 0..10 {
            p.predict(&mut s);
        }
        assert_eq!(p.markov_table().updates(), updates_before);
    }

    #[test]
    fn block_granularity_prediction() {
        let mut p = SfmPredictor::paper_baseline();
        // Addresses in the middle of blocks; predictions come back
        // block-aligned.
        train_seq(&mut p, 0x8000, &[0x1010, 0x5028, 0x1010, 0x5028]);
        let mut s = StreamState::new(Addr::new(0x8000), Addr::new(0x1010), 32);
        let next = p.predict(&mut s).unwrap();
        assert_eq!(next, Addr::new(0x5020), "markov target is the block base");
        assert_eq!(next.block(32), BlockAddr(0x5028 / 32));
    }
}
