//! The differential (delta-encoded) first-order Markov predictor.

use psb_common::stats::Histogram;
use psb_common::BlockAddr;

/// A first-order Markov table over the L1 miss stream, storing *signed
/// cache-block deltas* instead of absolute addresses.
///
/// Section 4.2 of the paper: "In order to reduce the size of the Markov
/// predictor table we store into the table only the difference between
/// consecutive cache miss addresses ... this number can be further reduced
/// by storing this difference as the number of cache blocks. ... having
/// 16 bits captures almost all of the transitions. ... In this paper we
/// use a Markov table with 2K entries, which uses a total of 4 Kbytes for
/// the data storage. In addition, the tag size can also be reduced by
/// storing only partial address tags."
///
/// This implementation is direct-mapped with an 8-bit partial tag and
/// configurable delta width. Deltas that do not fit in the configured
/// width are dropped (not stored); the distribution of required widths is
/// recorded in a histogram, which regenerates Figure 4.
///
/// # Example
///
/// ```
/// use psb_common::BlockAddr;
/// use psb_core::MarkovTable;
///
/// let mut m = MarkovTable::paper_baseline();
/// m.update(BlockAddr(100), BlockAddr(175)); // after block 100 came 175
/// assert_eq!(m.predict(BlockAddr(100)), Some(BlockAddr(175)));
/// assert_eq!(m.predict(BlockAddr(101)), None);
/// ```
#[derive(Clone, Debug)]
pub struct MarkovTable {
    /// One packed word per entry — delta in the low 32 bits (two's
    /// complement), the 8-bit partial tag above it, and a valid bit on
    /// top — so a predict touches exactly one cache line per probe
    /// instead of three parallel arrays.
    slots: Vec<u64>,
    entries: usize,
    delta_bits: u32,
    /// `log2(entries)` when the capacity is a power of two (the paper's
    /// 2K baseline qualifies), enabling mask/shift indexing.
    entry_shift: Option<u32>,
    delta_width_hist: Histogram,
    updates: u64,
    dropped: u64,
}

/// Bit offset of the partial tag inside a packed slot.
const TAG_SHIFT: u64 = 32;
/// Mask of the partial-tag field inside a packed slot.
const TAG_MASK: u64 = 0xff << TAG_SHIFT;
/// Valid bit of a packed slot.
const VALID: u64 = 1 << 40;

impl MarkovTable {
    /// The paper's 2K-entry table with 16-bit block deltas (4 KB of data
    /// storage).
    pub fn paper_baseline() -> Self {
        MarkovTable::new(2048, 16)
    }

    /// Creates a table with `entries` slots storing `delta_bits`-bit
    /// signed block deltas.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `delta_bits` is not in `1..=32`.
    pub fn new(entries: usize, delta_bits: u32) -> Self {
        assert!(entries > 0, "zero-sized Markov table");
        assert!((1..=32).contains(&delta_bits), "delta width {delta_bits} out of range");
        MarkovTable {
            slots: vec![0; entries],
            entries,
            delta_bits,
            entry_shift: entries.is_power_of_two().then(|| entries.trailing_zeros()),
            delta_width_hist: Histogram::new(33),
            updates: 0,
            dropped: 0,
        }
    }

    fn index_and_tag(&self, block: BlockAddr) -> (usize, u64) {
        // XOR-fold the upper bits into the index so that regularly
        // aligned structures (e.g. 64-byte nodes, whose block numbers are
        // all even) spread over the whole table instead of aliasing into
        // a fraction of it. The partial tag comes from the bits above the
        // index.
        let folded = block.0 ^ (block.0 >> 11) ^ (block.0 >> 22);
        let (idx, tag) = match self.entry_shift {
            Some(shift) => ((folded as usize) & (self.entries - 1), (block.0 >> shift) & 0xff),
            None => ((folded as usize) % self.entries, (block.0 / self.entries as u64) & 0xff),
        };
        (idx, tag << TAG_SHIFT)
    }

    /// Number of bits required to represent `delta` in two's complement.
    pub fn bits_needed(delta: i64) -> u32 {
        // n bits represent -2^(n-1) ..= 2^(n-1)-1.
        for n in 1..=63 {
            let lo = -(1i64 << (n - 1));
            let hi = (1i64 << (n - 1)) - 1;
            if delta >= lo && delta <= hi {
                return n;
            }
        }
        64
    }

    /// Records the miss transition `prev → next` (both block addresses).
    ///
    /// The transition is stored only if its delta fits the configured
    /// width; either way the required width is added to the histogram
    /// behind [`MarkovTable::delta_width_histogram`].
    pub fn update(&mut self, prev: BlockAddr, next: BlockAddr) {
        self.updates += 1;
        let delta = next.delta(prev);
        let width = Self::bits_needed(delta);
        self.delta_width_hist.add(width as u64);
        if width > self.delta_bits {
            self.dropped += 1;
            return;
        }
        let (idx, tag) = self.index_and_tag(prev);
        self.slots[idx] = VALID | tag | (delta as i32 as u32 as u64);
    }

    /// Predicts the block that followed `block` last time, if the table
    /// holds a transition for it.
    pub fn predict(&self, block: BlockAddr) -> Option<BlockAddr> {
        let (idx, tag) = self.index_and_tag(block);
        let slot = self.slots[idx];
        (slot & (VALID | TAG_MASK) == VALID | tag).then(|| block.offset(slot as u32 as i32 as i64))
    }

    /// Histogram of the signed bit-width needed by every observed
    /// transition delta (index = bits, 0..=32; wider deltas land in the
    /// overflow bucket). This regenerates Figure 4 of the paper.
    pub fn delta_width_histogram(&self) -> &Histogram {
        &self.delta_width_hist
    }

    /// Total update calls.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Updates whose delta did not fit the configured width.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Table capacity in entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Configured delta width in bits.
    pub fn delta_bits(&self) -> u32 {
        self.delta_bits
    }

    /// Data storage in bytes (entries × delta width / 8), the paper's
    /// "4 Kbytes" figure for the baseline.
    pub fn data_bytes(&self) -> usize {
        self.entries * self.delta_bits as usize / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_last_transition() {
        let mut m = MarkovTable::paper_baseline();
        m.update(BlockAddr(10), BlockAddr(20));
        m.update(BlockAddr(20), BlockAddr(7));
        assert_eq!(m.predict(BlockAddr(10)), Some(BlockAddr(20)));
        assert_eq!(m.predict(BlockAddr(20)), Some(BlockAddr(7)));
        // First-order: a new successor overwrites.
        m.update(BlockAddr(10), BlockAddr(99));
        assert_eq!(m.predict(BlockAddr(10)), Some(BlockAddr(99)));
    }

    #[test]
    fn negative_deltas_round_trip() {
        let mut m = MarkovTable::paper_baseline();
        m.update(BlockAddr(1000), BlockAddr(200));
        assert_eq!(m.predict(BlockAddr(1000)), Some(BlockAddr(200)));
    }

    #[test]
    fn partial_tag_rejects_aliases() {
        let mut m = MarkovTable::new(16, 16);
        // Blocks 5 and 5+16 share index 5 but differ in tag.
        m.update(BlockAddr(5), BlockAddr(6));
        assert_eq!(m.predict(BlockAddr(5 + 16)), None);
        // The alias evicts.
        m.update(BlockAddr(5 + 16), BlockAddr(30));
        assert_eq!(m.predict(BlockAddr(5)), None);
        assert_eq!(m.predict(BlockAddr(5 + 16)), Some(BlockAddr(30)));
    }

    #[test]
    fn partial_tags_admit_undetectable_aliases() {
        let mut m = MarkovTable::new(16, 16);
        // Some other block shares both the (folded) index and the 8-bit
        // partial tag; it false-hits and, because the entry is a relative
        // delta, predicts its own offset — a mispredict, not an error.
        m.update(BlockAddr(5), BlockAddr(6));
        let alias = (6..1_000_000)
            .map(BlockAddr)
            .find(|b| m.predict(*b).is_some())
            .expect("an undetectable alias exists under 8-bit partial tags");
        assert_eq!(m.predict(alias), Some(alias.offset(1)));
    }

    #[test]
    fn oversized_deltas_dropped_but_histogrammed() {
        let mut m = MarkovTable::new(64, 8); // only 8-bit deltas fit
        m.update(BlockAddr(0), BlockAddr(1_000_000));
        assert_eq!(m.predict(BlockAddr(0)), None);
        assert_eq!(m.dropped(), 1);
        assert_eq!(m.updates(), 1);
        assert_eq!(m.delta_width_histogram().total(), 1);
    }

    #[test]
    fn bits_needed_boundaries() {
        assert_eq!(MarkovTable::bits_needed(0), 1);
        assert_eq!(MarkovTable::bits_needed(-1), 1);
        assert_eq!(MarkovTable::bits_needed(1), 2);
        assert_eq!(MarkovTable::bits_needed(127), 8);
        assert_eq!(MarkovTable::bits_needed(128), 9);
        assert_eq!(MarkovTable::bits_needed(-128), 8);
        assert_eq!(MarkovTable::bits_needed(-129), 9);
        assert_eq!(MarkovTable::bits_needed(32767), 16);
        assert_eq!(MarkovTable::bits_needed(32768), 17);
        assert_eq!(MarkovTable::bits_needed(-32768), 16);
        assert_eq!(MarkovTable::bits_needed(i64::MAX), 64);
    }

    #[test]
    fn sixteen_bit_boundary_respected() {
        let mut m = MarkovTable::paper_baseline();
        m.update(BlockAddr(100), BlockAddr(100 + 32767));
        assert!(m.predict(BlockAddr(100)).is_some());
        m.update(BlockAddr(200), BlockAddr(200 + 32768));
        assert!(m.predict(BlockAddr(200)).is_none());
        assert_eq!(m.dropped(), 1);
    }

    #[test]
    fn data_bytes_matches_paper() {
        assert_eq!(MarkovTable::paper_baseline().data_bytes(), 4096);
    }

    #[test]
    fn chain_following_reconstructs_pointer_walk() {
        // A pointer-chase miss sequence visits an irregular but fixed
        // cycle of blocks; after one traversal the Markov table replays it.
        let walk = [100u64, 341, 217, 909, 405, 100];
        let mut m = MarkovTable::paper_baseline();
        for w in walk.windows(2) {
            m.update(BlockAddr(w[0]), BlockAddr(w[1]));
        }
        // Follow predictions from the head: exactly the recorded walk.
        let mut cur = BlockAddr(100);
        let mut seen = vec![cur.0];
        for _ in 0..5 {
            cur = m.predict(cur).expect("chain link present");
            seen.push(cur.0);
        }
        assert_eq!(seen, walk.to_vec());
    }

    #[test]
    #[should_panic(expected = "zero-sized Markov table")]
    fn zero_entries_panics() {
        MarkovTable::new(0, 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_delta_bits_panics() {
        MarkovTable::new(2048, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_wide_delta_bits_panics() {
        MarkovTable::new(2048, 33);
    }

    #[test]
    fn extreme_geometries_construct() {
        // Both ends of the documented ranges are valid: one entry, full
        // 32-bit deltas.
        let mut m = MarkovTable::new(1, 32);
        m.update(BlockAddr(10), BlockAddr(20));
        assert_eq!(m.predict(BlockAddr(10)), Some(BlockAddr(20)));
    }

    #[test]
    fn bits_needed_covers_the_64_bit_extremes() {
        assert_eq!(MarkovTable::bits_needed(0), 1);
        assert_eq!(MarkovTable::bits_needed(-(1i64 << 62)), 63);
        assert_eq!(MarkovTable::bits_needed((1i64 << 62) - 1), 63);
        assert_eq!(MarkovTable::bits_needed(i64::MIN), 64);
    }

    #[test]
    fn delta_width_histogram_buckets_exact_widths_up_to_32() {
        let mut m = MarkovTable::paper_baseline();
        m.update(BlockAddr(0), BlockAddr((1 << 31) - 1)); // needs exactly 32 bits
        m.update(BlockAddr(0), BlockAddr(1 << 31)); // needs 33: overflow bucket
        let h = m.delta_width_histogram();
        assert_eq!(h.bucket(32), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn xor_fold_aliases_high_blocks_into_the_index() {
        // Block 1<<22 folds (via the >>11 and >>22 taps) onto index 1 with
        // partial tag 0 — the same slot and tag as block 1, so the recorded
        // transition is visible through block 1. The documented cost of
        // partial tags, and a pin on the exact fold.
        let mut m = MarkovTable::paper_baseline();
        m.update(BlockAddr(1 << 22), BlockAddr((1 << 22) + 1));
        assert_eq!(m.predict(BlockAddr(1)), Some(BlockAddr(2)));
    }

    #[test]
    fn odd_geometry_fallback_tag_rejects_aliases() {
        // 3 entries: blocks 0 and 3 share (folded) index 0 but differ in
        // the fallback `/`-derived partial tag.
        let mut m = MarkovTable::new(3, 16);
        m.update(BlockAddr(0), BlockAddr(1));
        assert_eq!(m.predict(BlockAddr(0)), Some(BlockAddr(1)));
        assert_eq!(m.predict(BlockAddr(3)), None);
        // 6 entries: blocks 0 and 384 share index 0; their tags (0 and
        // 384/6 = 64) differ only in bits the 8-bit fold must keep.
        let mut m = MarkovTable::new(6, 16);
        m.update(BlockAddr(0), BlockAddr(1));
        assert_eq!(m.predict(BlockAddr(384)), None);
    }
}
