//! The PC-stride stream-buffer predictor of Farkas et al. — the paper's
//! baseline comparison point ("PC-stride").

use crate::predictor::{AllocInfo, StreamPredictor, StreamState, StrideTable};
use psb_common::Addr;

/// PC-indexed stride prediction for stream buffers.
///
/// "The PC-stride predictor determines the stride for a load instruction
/// by using the PC to index into a stride address prediction table. ...
/// the stride prediction for a stream buffer is based only on the past
/// memory behavior of the load for which the stream buffer was
/// allocated." The stream buffer is assigned a fixed stride at allocation
/// and every prediction simply adds it.
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_core::{PcStridePredictor, StreamPredictor, StreamState};
///
/// let mut p = PcStridePredictor::paper_baseline();
/// let pc = Addr::new(0x1000);
/// for i in 0..4u64 {
///     p.train(pc, Addr::new(0x8000 + 64 * i));
/// }
/// let mut s = StreamState::new(pc, Addr::new(0x80c0), 64);
/// assert_eq!(p.predict(&mut s), Some(Addr::new(0x8100)));
/// assert_eq!(s.last_addr, Addr::new(0x8100));
/// ```
#[derive(Clone, Debug)]
pub struct PcStridePredictor {
    table: StrideTable,
}

impl PcStridePredictor {
    /// The paper's configuration: a 256-entry 4-way stride table.
    pub fn paper_baseline() -> Self {
        PcStridePredictor { table: StrideTable::paper_baseline() }
    }

    /// Creates a predictor around a custom stride table.
    pub fn new(table: StrideTable) -> Self {
        PcStridePredictor { table }
    }

    /// Read-only access to the underlying table.
    pub fn table(&self) -> &StrideTable {
        &self.table
    }
}

impl StreamPredictor for PcStridePredictor {
    fn train(&mut self, pc: Addr, addr: Addr) {
        let out = self.table.train(pc, addr);
        if !out.cold {
            self.table.confirm(pc, out.stride_correct);
        }
    }

    fn alloc_info(&self, pc: Addr, addr: Addr) -> Option<AllocInfo> {
        self.table.info(pc, addr).map(|i| AllocInfo {
            stride: i.stride,
            confidence: i.confidence,
            // Farkas et al.'s two-miss filter: "misses 2 times in a row,
            // and the last two strides are identical". `stride_streak`
            // counts consecutive *repeats*, so one repeat means the last
            // two observed strides matched.
            two_miss_ok: i.stride_streak >= 1,
            history: 0,
        })
    }

    fn predict(&self, state: &mut StreamState) -> Option<Addr> {
        let next = state.last_addr.offset(state.stride);
        state.history = state.last_addr.raw();
        state.last_addr = next;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_miss_filter_requires_identical_strides() {
        let mut p = PcStridePredictor::paper_baseline();
        let pc = Addr::new(0x2000);
        p.train(pc, Addr::new(0x100));
        p.train(pc, Addr::new(0x140));
        // One stride observed once: streak 1, filter closed.
        assert!(!p.alloc_info(pc, Addr::new(0x140)).unwrap().two_miss_ok);
        p.train(pc, Addr::new(0x180));
        assert!(p.alloc_info(pc, Addr::new(0x180)).unwrap().two_miss_ok);
    }

    #[test]
    fn cold_pc_has_no_info() {
        let p = PcStridePredictor::paper_baseline();
        assert_eq!(p.alloc_info(Addr::new(0x1234), Addr::new(0)), None);
    }

    #[test]
    fn prediction_never_consults_tables() {
        // The stream stride is fixed at allocation: even after the table
        // learns a different stride, an existing stream keeps its own.
        let mut p = PcStridePredictor::paper_baseline();
        let pc = Addr::new(0x3000);
        for i in 0..3 {
            p.train(pc, Addr::new(0x1000 + 32 * i));
        }
        let mut s = StreamState::new(pc, Addr::new(0x1040), 999);
        assert_eq!(p.predict(&mut s), Some(Addr::new(0x1040 + 999)));
    }

    #[test]
    fn stream_walks_forward() {
        let p = PcStridePredictor::paper_baseline();
        let mut s = StreamState::new(Addr::new(0), Addr::new(0x1000), -64);
        assert_eq!(p.predict(&mut s), Some(Addr::new(0xfc0)));
        assert_eq!(p.predict(&mut s), Some(Addr::new(0xf80)));
        assert_eq!(p.predict(&mut s), Some(Addr::new(0xf40)));
    }
}
