//! The prefetcher interface between the stream-buffer engines and the
//! surrounding simulator.

use psb_common::{Addr, Cycle};

/// Result of probing the stream buffers on an L1 miss.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SbLookup {
    /// A stream buffer holds (or is fetching) the block. `ready` is when
    /// the data is available at the L1 boundary: the current cycle for a
    /// resident block (it "is moved into the data cache"), or the fill
    /// completion time for an in-flight block (the tag "is moved into a
    /// data cache MSHR").
    Hit {
        /// Data-available cycle.
        ready: Cycle,
    },
    /// No stream buffer covers the block; the miss proceeds to the lower
    /// memory system (and may trigger a stream-buffer allocation).
    Miss,
}

/// Counters reported by every prefetcher.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// L1-miss probes of the stream buffers.
    pub lookups: u64,
    /// Probes that hit a stream buffer (resident or in flight).
    pub hits: u64,
    /// Prefetches sent to the memory system.
    pub issued: u64,
    /// Issued prefetches whose data was consumed by the processor.
    pub used: u64,
    /// Predictions discarded because the block was already tracked by a
    /// stream buffer (the non-overlapping-streams check).
    pub suppressed: u64,
    /// Predictions generated (including suppressed ones).
    pub predictions: u64,
    /// Stream (re)allocations performed.
    pub allocations: u64,
    /// Allocation requests rejected by the active filter.
    pub alloc_rejected: u64,
}

impl PrefetchStats {
    /// Prefetch accuracy: "the number of prefetches used divided by the
    /// number of prefetches made" (Figure 6). 0.0 when nothing issued.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.used as f64 / self.issued as f64
        }
    }

    /// Fraction of stream-buffer probes that hit.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// The memory system as seen by a prefetch engine.
///
/// Implemented by the full simulator over its TLB + lower memory system;
/// tests use [`TestSink`].
pub trait PrefetchSink {
    /// True if the L1↔L2 bus is idle at the start of this cycle — the
    /// paper's gating condition for issuing a prefetch.
    fn bus_free(&self, now: Cycle) -> bool;

    /// Issues a prefetch of the cache block containing `addr` (a virtual
    /// address; the implementation performs TLB translation). Returns the
    /// cycle the data arrives at the stream buffer.
    fn fetch(&mut self, now: Cycle, addr: Addr) -> Cycle;
}

/// A hardware prefetcher driven by the simulator.
///
/// Call order within one simulated cycle: any number of
/// [`Prefetcher::lookup`] / [`Prefetcher::train`] /
/// [`Prefetcher::allocate`] calls from the pipeline's memory accesses,
/// then exactly one [`Prefetcher::tick`].
pub trait Prefetcher {
    /// Probes the stream buffers for the block containing `addr` after an
    /// L1 miss. A hit frees the entry for a new prediction.
    fn lookup(&mut self, now: Cycle, addr: Addr) -> SbLookup;

    /// Trains the address predictor on a load L1 miss (write-back stage).
    /// Store-forwarded loads must not be reported.
    fn train(&mut self, now: Cycle, pc: Addr, addr: Addr);

    /// Requests a stream allocation for a load that missed both the L1
    /// and the stream buffers. Subject to the allocation filter; also
    /// drives priority aging.
    fn allocate(&mut self, now: Cycle, pc: Addr, addr: Addr);

    /// Advances the engine by one cycle: promotes arrived fills, makes at
    /// most one prediction (the shared predictor port) and issues at most
    /// one prefetch (if the bus is free).
    fn tick(&mut self, now: Cycle, sink: &mut dyn PrefetchSink);

    /// True if [`Prefetcher::tick`] is guaranteed to be an externally
    /// observable no-op until the next [`Prefetcher::lookup`],
    /// [`Prefetcher::allocate`] or [`Prefetcher::observe_fetch`] call —
    /// no prediction can be made, no prefetch can be issued, and no
    /// counter or event can change. The simulator uses this to skip the
    /// per-cycle virtual dispatch while the engine is idle. The
    /// conservative default says "never", which is always sound.
    fn quiescent(&self) -> bool {
        false
    }

    /// Observes a load entering the *fetch* stage (its address is not yet
    /// known). Only fetch-stream prefetchers react; the default is a
    /// no-op.
    fn observe_fetch(&mut self, now: Cycle, pc: Addr) {
        let _ = (now, pc);
    }

    /// Attaches an observability sink: the engine registers its metric
    /// handles and starts reporting prefetch-lifecycle events through
    /// `obs`. The default ignores the sink (e.g. [`NoPrefetch`]).
    fn attach_obs(&mut self, obs: &crate::obs::SharedStreamObs) {
        let _ = obs;
    }

    /// Accumulated statistics.
    fn stats(&self) -> PrefetchStats;

    /// Human-readable configuration name (for reports).
    fn name(&self) -> &str;
}

/// The no-prefetching baseline: every probe misses, nothing is issued.
#[derive(Clone, Debug, Default)]
pub struct NoPrefetch {
    stats: PrefetchStats,
}

impl NoPrefetch {
    /// Creates the null prefetcher.
    pub fn new() -> Self {
        NoPrefetch::default()
    }
}

impl Prefetcher for NoPrefetch {
    fn lookup(&mut self, _now: Cycle, _addr: Addr) -> SbLookup {
        self.stats.lookups += 1;
        SbLookup::Miss
    }

    fn train(&mut self, _now: Cycle, _pc: Addr, _addr: Addr) {}

    fn allocate(&mut self, _now: Cycle, _pc: Addr, _addr: Addr) {}

    fn tick(&mut self, _now: Cycle, _sink: &mut dyn PrefetchSink) {}

    fn quiescent(&self) -> bool {
        // `tick` is unconditionally empty.
        true
    }

    fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn name(&self) -> &str {
        "none"
    }
}

/// A test double for [`PrefetchSink`]: fixed latency, always-free (or
/// never-free) bus, and a log of fetched addresses.
#[derive(Clone, Debug)]
pub struct TestSink {
    /// Latency from issue to arrival.
    pub latency: u64,
    /// Whether the bus reports free.
    pub bus_is_free: bool,
    /// Every address fetched, in order.
    pub fetched: Vec<Addr>,
}

impl TestSink {
    /// Creates a sink with the given prefetch latency and a free bus.
    pub fn new(latency: u64) -> Self {
        TestSink { latency, bus_is_free: true, fetched: Vec::new() }
    }
}

impl PrefetchSink for TestSink {
    fn bus_free(&self, _now: Cycle) -> bool {
        self.bus_is_free
    }

    fn fetch(&mut self, now: Cycle, addr: Addr) -> Cycle {
        self.fetched.push(addr);
        now + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetch_always_misses() {
        let mut p = NoPrefetch::new();
        assert_eq!(p.lookup(Cycle::ZERO, Addr::new(0x100)), SbLookup::Miss);
        p.train(Cycle::ZERO, Addr::new(0), Addr::new(0x100));
        p.allocate(Cycle::ZERO, Addr::new(0), Addr::new(0x100));
        let mut sink = TestSink::new(10);
        p.tick(Cycle::ZERO, &mut sink);
        assert!(sink.fetched.is_empty());
        assert_eq!(p.stats().lookups, 1);
        assert_eq!(p.stats().issued, 0);
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn stats_ratios() {
        let s = PrefetchStats { lookups: 10, hits: 4, issued: 8, used: 4, ..Default::default() };
        assert_eq!(s.accuracy(), 0.5);
        assert_eq!(s.hit_rate(), 0.4);
        let zero = PrefetchStats::default();
        assert_eq!(zero.accuracy(), 0.0);
        assert_eq!(zero.hit_rate(), 0.0);
    }

    #[test]
    fn test_sink_records_fetches() {
        let mut sink = TestSink::new(7);
        assert!(sink.bus_free(Cycle::ZERO));
        assert_eq!(sink.fetch(Cycle::new(3), Addr::new(0x40)), Cycle::new(10));
        assert_eq!(sink.fetched, vec![Addr::new(0x40)]);
        sink.bus_is_free = false;
        assert!(!sink.bus_free(Cycle::ZERO));
    }
}
