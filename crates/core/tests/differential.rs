//! Differential suite: the arena-flattened hot-path structures versus
//! straightforward reference models.
//!
//! The stride table, Markov table and stream-buffer entry file were
//! rewritten from scan-the-`Vec` representations into flat arenas with
//! mask/shift indexing and bitmask state. These tests re-implement each
//! structure the obvious way (per-set `Vec`s, parallel arrays, an
//! `SbEntry` vector) and drive both through identical SplitMix64
//! workloads, comparing every externally visible output after every
//! operation. Any packing, masking or ordering bug in the arenas shows
//! up as a divergence with the op index that triggered it.
//!
//! The `teeth_*` tests prove the suite can actually catch the bug class
//! the arenas are most prone to: a reference variant with its set mask
//! off by one (`num_sets - 2` instead of `num_sets - 1`, folding odd
//! sets onto even ones) must be flagged.

use psb_common::{Addr, BlockAddr, Cycle, SatCounter, SplitMix64};
use psb_core::{MarkovTable, SbEntry, StreamBuffer, StrideInfo, StrideTable, StrideTrainOutcome};

const CASES: u64 = 40;

// ---------------------------------------------------------------------
// Stride table reference model
// ---------------------------------------------------------------------

#[derive(Clone)]
struct ModelStrideEntry {
    tag: u64,
    last_addr: Addr,
    last_stride: i64,
    two_delta: i64,
    confidence: SatCounter,
    stride_streak: u32,
    predicted_streak: u32,
    lru: u64,
    valid: bool,
}

/// The pre-arena stride table: per-set linear scans, `%` / `/`
/// indexing, no cached confirm slot. `mask_bug` switches in the broken
/// set mask for the teeth test.
struct ModelStride {
    sets: Vec<ModelStrideEntry>,
    num_sets: usize,
    assoc: usize,
    stamp: u64,
    mask_bug: bool,
}

impl ModelStride {
    fn new(entries: usize, assoc: usize, confidence_max: u32, mask_bug: bool) -> Self {
        ModelStride {
            sets: vec![
                ModelStrideEntry {
                    tag: 0,
                    last_addr: Addr::new(0),
                    last_stride: 0,
                    two_delta: 0,
                    confidence: SatCounter::new(confidence_max),
                    stride_streak: 0,
                    predicted_streak: 0,
                    lru: 0,
                    valid: false,
                };
                entries
            ],
            num_sets: entries / assoc,
            assoc,
            stamp: 0,
            mask_bug,
        }
    }

    fn set_and_tag(&self, pc: Addr) -> (usize, u64) {
        let idx = (pc.raw() >> 2) as usize;
        if self.mask_bug {
            // Deliberately broken: mask one short of the set count.
            (idx & (self.num_sets - 2), (idx / self.num_sets) as u64)
        } else {
            (idx % self.num_sets, (idx / self.num_sets) as u64)
        }
    }

    fn find(&self, pc: Addr) -> Option<usize> {
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.assoc;
        (base..base + self.assoc).find(|&i| self.sets[i].valid && self.sets[i].tag == tag)
    }

    fn train(&mut self, pc: Addr, addr: Addr) -> StrideTrainOutcome {
        self.stamp += 1;
        if let Some(i) = self.find(pc) {
            let e = &mut self.sets[i];
            let prev = e.last_addr;
            let new_stride = addr.delta(prev);
            let stride_correct = prev.offset(e.two_delta) == addr;
            let repeat_stride = new_stride == e.last_stride;
            if new_stride == e.last_stride {
                e.two_delta = new_stride;
                e.stride_streak = e.stride_streak.saturating_add(1);
            } else {
                e.stride_streak = 0;
            }
            e.last_stride = new_stride;
            e.last_addr = addr;
            e.lru = self.stamp;
            StrideTrainOutcome { prev_addr: Some(prev), stride_correct, repeat_stride, cold: false }
        } else {
            let (set, tag) = self.set_and_tag(pc);
            let base = set * self.assoc;
            let victim = (base..base + self.assoc)
                .min_by_key(|&i| (self.sets[i].valid, self.sets[i].lru))
                .expect("assoc >= 1");
            let max = self.sets[victim].confidence.max();
            self.sets[victim] = ModelStrideEntry {
                tag,
                last_addr: addr,
                last_stride: 0,
                two_delta: 0,
                confidence: SatCounter::new(max),
                stride_streak: 0,
                predicted_streak: 0,
                lru: self.stamp,
                valid: true,
            };
            StrideTrainOutcome {
                prev_addr: None,
                stride_correct: false,
                repeat_stride: false,
                cold: true,
            }
        }
    }

    fn confirm(&mut self, pc: Addr, predicted_correctly: bool) {
        if let Some(i) = self.find(pc) {
            let e = &mut self.sets[i];
            if predicted_correctly {
                e.confidence.inc();
                e.predicted_streak = e.predicted_streak.saturating_add(1);
            } else {
                e.confidence.dec();
                e.predicted_streak = 0;
            }
        }
    }

    fn info(&self, pc: Addr) -> Option<StrideInfo> {
        self.find(pc).map(|i| {
            let e = &self.sets[i];
            StrideInfo {
                last_addr: e.last_addr,
                stride: e.two_delta,
                confidence: e.confidence.get(),
                stride_streak: e.stride_streak,
                predicted_streak: e.predicted_streak,
            }
        })
    }
}

/// Drives the arena table and the model through one identical workload,
/// comparing the train outcome and every resident PC's info after each
/// step. Returns the first divergence as an error.
fn stride_differential(seed: u64, mask_bug: bool) -> Result<(), String> {
    let mut rng = SplitMix64::new(seed);
    let mut arena = StrideTable::new(64, 4, 7); // 16 sets: pow2 mask path
    let mut model = ModelStride::new(64, 4, 7, mask_bug);
    let mut pcs: Vec<u64> = Vec::new();
    for op in 0..300 {
        // Half the time revisit a known PC (exercises hits, streaks and
        // the confirm fast path); otherwise a new one (eviction, aliasing).
        let pc = if !pcs.is_empty() && rng.below(2) == 0 {
            pcs[rng.below(pcs.len() as u64) as usize]
        } else {
            let p = rng.below(1 << 12) << 2;
            pcs.push(p);
            p
        };
        let addr = rng.below(1 << 20) * 8;
        let oa = arena.train(Addr::new(pc), Addr::new(addr));
        let om = model.train(Addr::new(pc), Addr::new(addr));
        if oa != om {
            return Err(format!("op {op}: train({pc:#x}) diverged: arena {oa:?}, model {om:?}"));
        }
        // Interleave confirms on the trained PC and occasionally on an
        // unrelated PC (the confirm-slot cache must not leak state).
        let confirm_pc =
            if rng.below(8) == 0 { pcs[rng.below(pcs.len() as u64) as usize] } else { pc };
        arena.confirm(Addr::new(confirm_pc), oa.stride_correct);
        model.confirm(Addr::new(confirm_pc), om.stride_correct);
        for &p in &pcs {
            let ia = arena.info(Addr::new(p), Addr::new(0));
            let im = model.info(Addr::new(p));
            if ia != im {
                return Err(format!("op {op}: info({p:#x}) diverged: arena {ia:?}, model {im:?}"));
            }
        }
    }
    Ok(())
}

#[test]
fn stride_arena_matches_reference_model() {
    for seed in 0..CASES {
        stride_differential(0x57D1F0 + seed, false).expect("arena must track the reference model");
    }
}

#[test]
fn teeth_stride_off_by_one_set_mask_is_caught() {
    let caught = (0..CASES).any(|seed| stride_differential(0x57D1F0 + seed, true).is_err());
    assert!(caught, "an off-by-one set mask must diverge from the correct table");
}

// ---------------------------------------------------------------------
// Markov table reference model
// ---------------------------------------------------------------------

/// The pre-arena Markov table: three parallel arrays instead of one
/// packed word per slot, `%` / `/` indexing.
struct ModelMarkov {
    tags: Vec<u64>,
    deltas: Vec<i64>,
    valid: Vec<bool>,
    entries: usize,
    delta_bits: u32,
    updates: u64,
    dropped: u64,
}

impl ModelMarkov {
    fn new(entries: usize, delta_bits: u32) -> Self {
        ModelMarkov {
            tags: vec![0; entries],
            deltas: vec![0; entries],
            valid: vec![false; entries],
            entries,
            delta_bits,
            updates: 0,
            dropped: 0,
        }
    }

    fn index_and_tag(&self, block: BlockAddr) -> (usize, u64) {
        let folded = block.0 ^ (block.0 >> 11) ^ (block.0 >> 22);
        ((folded as usize) % self.entries, (block.0 / self.entries as u64) & 0xff)
    }

    fn update(&mut self, prev: BlockAddr, next: BlockAddr) {
        self.updates += 1;
        let delta = next.delta(prev);
        if MarkovTable::bits_needed(delta) > self.delta_bits {
            self.dropped += 1;
            return;
        }
        let (idx, tag) = self.index_and_tag(prev);
        self.tags[idx] = tag;
        self.deltas[idx] = delta;
        self.valid[idx] = true;
    }

    fn predict(&self, block: BlockAddr) -> Option<BlockAddr> {
        let (idx, tag) = self.index_and_tag(block);
        (self.valid[idx] && self.tags[idx] == tag).then(|| block.offset(self.deltas[idx]))
    }
}

#[test]
fn markov_arena_matches_reference_model() {
    let mut rng = SplitMix64::new(0x3A4C0F);
    for case in 0..CASES {
        let mut arena = MarkovTable::new(256, 16); // pow2: mask/shift path
        let mut model = ModelMarkov::new(256, 16);
        let mut blocks: Vec<u64> = Vec::new();
        for op in 0..400 {
            let prev = if !blocks.is_empty() && rng.below(2) == 0 {
                blocks[rng.below(blocks.len() as u64) as usize]
            } else {
                let b = rng.below(1 << 22);
                blocks.push(b);
                b
            };
            // Mostly storable deltas, sometimes an oversized one that
            // must be dropped by both sides.
            let next = if rng.below(8) == 0 {
                prev.wrapping_add(1 << 20)
            } else {
                (prev as i64 + (rng.below(4096) as i64 - 2048)).unsigned_abs()
            };
            arena.update(BlockAddr(prev), BlockAddr(next));
            model.update(BlockAddr(prev), BlockAddr(next));
            assert_eq!(arena.updates(), model.updates, "case {case} op {op}: update count");
            assert_eq!(arena.dropped(), model.dropped, "case {case} op {op}: drop count");
            for &b in &blocks {
                assert_eq!(
                    arena.predict(BlockAddr(b)),
                    model.predict(BlockAddr(b)),
                    "case {case} op {op}: predict({b}) diverged"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stream-buffer entry file reference model
// ---------------------------------------------------------------------

/// The pre-arena entry file: a plain `Vec<SbEntry>` with linear scans.
struct ModelBuffer {
    entries: Vec<SbEntry>,
    active: bool,
}

impl ModelBuffer {
    fn new(n: usize) -> Self {
        ModelBuffer { entries: vec![SbEntry::Empty; n], active: false }
    }

    fn first_empty(&self) -> Option<usize> {
        self.entries.iter().position(SbEntry::is_empty)
    }

    fn first_allocated(&self) -> Option<usize> {
        self.entries.iter().position(|e| matches!(e, SbEntry::Allocated { .. }))
    }

    fn find(&self, block: BlockAddr) -> Option<usize> {
        self.entries.iter().position(|e| e.block() == Some(block))
    }

    fn promote_arrived(&mut self, now: Cycle) -> u32 {
        let mut promoted = 0;
        for e in &mut self.entries {
            if let SbEntry::InFlight { block, ready } = *e {
                if ready <= now {
                    *e = SbEntry::Ready { block };
                    promoted += 1;
                }
            }
        }
        promoted
    }

    fn can_predict(&self) -> bool {
        self.active && self.entries.iter().any(SbEntry::is_empty)
    }

    fn can_prefetch(&self) -> bool {
        self.active && self.entries.iter().any(|e| matches!(e, SbEntry::Allocated { .. }))
    }

    fn fetched_unused(&self) -> u32 {
        self.entries
            .iter()
            .filter(|e| matches!(e, SbEntry::InFlight { .. } | SbEntry::Ready { .. }))
            .count() as u32
    }
}

#[test]
fn stream_buffer_masks_match_reference_model() {
    let mut rng = SplitMix64::new(0xB17F1E);
    for case in 0..CASES {
        let n = 1 + rng.below(64) as usize;
        let mut arena = StreamBuffer::new(n, 7);
        let mut model = ModelBuffer::new(n);
        arena.reallocate(Addr::new(0x100), Addr::new(0x8000), 32, 3, 0);
        model.active = true;
        let mut now = Cycle::ZERO;
        for op in 0..300 {
            now += rng.below(4);
            match rng.below(8) {
                // Reallocation wipes the file on both sides.
                0 => {
                    arena.reallocate(Addr::new(0x100), Addr::new(0x8000), 32, 3, op);
                    model.entries.fill(SbEntry::Empty);
                }
                // Promote arrived fills.
                1 => {
                    assert_eq!(
                        arena.promote_arrived(now),
                        model.promote_arrived(now),
                        "case {case} op {op}: promotion count"
                    );
                }
                // Overwrite a random slot with a random lifecycle state.
                _ => {
                    let idx = rng.below(n as u64) as usize;
                    let block = BlockAddr(rng.below(32));
                    let e = match rng.below(4) {
                        0 => SbEntry::Empty,
                        1 => SbEntry::Allocated { block },
                        2 => SbEntry::InFlight { block, ready: now + rng.below(6) },
                        _ => SbEntry::Ready { block },
                    };
                    arena.set_entry(idx, e);
                    model.entries[idx] = e;
                }
            }
            assert_eq!(arena.entries(), model.entries, "case {case} op {op}: entry file");
            assert_eq!(arena.first_empty(), model.first_empty(), "case {case} op {op}");
            assert_eq!(arena.first_allocated(), model.first_allocated(), "case {case} op {op}");
            assert_eq!(arena.can_predict(), model.can_predict(), "case {case} op {op}");
            assert_eq!(arena.can_prefetch(), model.can_prefetch(), "case {case} op {op}");
            assert_eq!(
                arena.is_quiescent(),
                !model.can_predict() && !model.can_prefetch(),
                "case {case} op {op}: quiescence"
            );
            assert_eq!(arena.fetched_unused(), model.fetched_unused(), "case {case} op {op}");
            let probe = BlockAddr(rng.below(32));
            assert_eq!(
                arena.find(probe),
                model.find(probe),
                "case {case} op {op}: find({probe:?})"
            );
        }
    }
}
