//! Property-style tests for the predictors and the stream-buffer
//! engine, sweeping deterministic pseudo-random cases from fixed seeds
//! (no external test framework, runs offline).

use psb_common::{Addr, BlockAddr, Cycle, SplitMix64};
use psb_core::{
    AllocFilter, MarkovTable, PcStridePredictor, Prefetcher, PsbPrefetcher, SbConfig, SbLookup,
    SfmPredictor, StreamPredictor, StreamState, StrideTable, TestSink,
};

const CASES: u64 = 100;

/// A constant-stride training sequence of any base/stride is learned
/// exactly by the two-delta table.
#[test]
fn stride_table_learns_any_constant_stride() {
    let mut meta = SplitMix64::new(0x57121D);
    for case in 0..CASES {
        let pc = meta.below(1 << 30) << 2;
        let base = meta.below(1 << 40);
        let stride = meta.below(8192) as i64 - 4096;
        let n = 4 + meta.below(12) as usize;
        let mut t = StrideTable::paper_baseline();
        for i in 0..n {
            t.train(Addr::new(pc), Addr::new(base).offset(stride * i as i64));
        }
        let info = t.info(Addr::new(pc), Addr::new(0)).expect("trained pc must be resident");
        assert_eq!(info.stride, stride, "case {case}");
        assert!(info.stride_streak as usize >= n - 2, "case {case}");
    }
}

/// The Markov table never invents transitions: a prediction implies a
/// previous update, and the predicted delta is bounded by the
/// configured width.
#[test]
fn markov_predictions_are_bounded() {
    let mut meta = SplitMix64::new(0x3A4C0F);
    for case in 0..CASES {
        let n = meta.below(128);
        let mut m = MarkovTable::paper_baseline();
        for _ in 0..n {
            m.update(BlockAddr(meta.below(1 << 20)), BlockAddr(meta.below(1 << 20)));
        }
        let probe = meta.below(1 << 20);
        if let Some(next) = m.predict(BlockAddr(probe)) {
            let delta = next.delta(BlockAddr(probe));
            assert!(
                (-32768..=32767).contains(&delta),
                "case {case}: delta {delta} exceeds 16 bits"
            );
            assert!(n > 0, "case {case}: prediction from an empty table");
        }
        assert_eq!(m.updates(), n, "case {case}");
    }
}

/// Whatever the training history, SFM stream predictions always
/// advance the stream state to the address they return.
#[test]
fn sfm_prediction_advances_state() {
    let mut meta = SplitMix64::new(0x5F3);
    for case in 0..CASES {
        let mut p = SfmPredictor::paper_baseline();
        let n = meta.below(64);
        for _ in 0..n {
            p.train(Addr::new(meta.below(64) << 2), Addr::new(meta.below(1 << 24) * 8));
        }
        let start = meta.below(1 << 24);
        let stride = 32 + meta.below(224) as i64;
        let mut s = StreamState::new(Addr::new(4), Addr::new(start * 8), stride);
        for _ in 0..8 {
            let before = s.last_addr;
            let predicted = p.predict(&mut s).expect("SFM always falls back to the stride");
            assert_eq!(s.last_addr, predicted, "case {case}");
            assert_ne!(predicted, before, "case {case}: stride >= 32 never predicts in place");
        }
    }
}

/// Engine invariants under arbitrary interleavings of training,
/// allocation, lookups and ticks: used <= issued, hits <= lookups,
/// and no block is ever tracked by two buffers.
#[test]
fn engine_invariants() {
    let mut meta = SplitMix64::new(0xE29);
    for case in 0..CASES {
        let mut e = PsbPrefetcher::psb(SbConfig::psb_conf_priority());
        let mut sink = TestSink::new(20);
        let mut now = Cycle::ZERO;
        let events = 1 + meta.below(255);
        for _ in 0..events {
            now += 1;
            let pc = Addr::new(0x1000 + meta.below(64) * 4);
            let addr = Addr::new(0x10_0000 + meta.below(1 << 16) * 32);
            match meta.below(4) {
                0 => e.train(now, pc, addr),
                1 => e.allocate(now, pc, addr),
                2 => {
                    e.lookup(now, addr);
                }
                _ => e.tick(now, &mut sink),
            }
            let s = e.stats();
            assert!(s.used <= s.issued, "case {case}");
            assert!(s.hits <= s.lookups, "case {case}");
            assert!(s.predictions >= s.suppressed, "case {case}");

            // Non-overlap: each block tracked at most once.
            let mut blocks: Vec<u64> = e
                .buffers()
                .iter()
                .flat_map(|b| b.entries().into_iter().filter_map(|en| en.block()).map(|b| b.0))
                .collect();
            let n = blocks.len();
            blocks.sort_unstable();
            blocks.dedup();
            assert_eq!(blocks.len(), n, "case {case}: duplicate tracked block");
        }
    }
}

/// A lookup hit always frees the entry: probing the same block again
/// without new predictions misses.
#[test]
fn lookup_hits_consume_entries() {
    let mut meta = SplitMix64::new(0x10C4);
    for case in 0..CASES {
        let laps = 2 + meta.below(4) as usize;
        let nodes = 8 + meta.below(56);
        let mut e = PsbPrefetcher::psb(SbConfig::psb_conf_priority());
        let pc = Addr::new(0x1000);
        let mut now = Cycle::ZERO;
        // Strided misses train + allocate.
        for lap in 0..laps {
            for i in 0..nodes {
                now += 3;
                let addr = Addr::new(0x10_0000 + i * 64 + lap as u64 * nodes * 64);
                e.train(now, pc, addr);
                if matches!(e.lookup(now, addr), SbLookup::Miss) {
                    e.allocate(now, pc, addr);
                }
                let mut sink = TestSink::new(1);
                e.tick(now, &mut sink);
            }
        }
        // Any block currently Ready: hit once, then miss.
        let ready_block = e.buffers().iter().flat_map(|b| b.entries()).find_map(|en| match en {
            psb_core::SbEntry::Ready { block } => Some(block),
            _ => None,
        });
        if let Some(block) = ready_block {
            let addr = block.base(32);
            let first = matches!(e.lookup(now + 10, addr), SbLookup::Hit { .. });
            let second = matches!(e.lookup(now + 11, addr), SbLookup::Miss);
            assert!(first, "case {case}: ready block must hit");
            assert!(second, "case {case}: hit must free the entry");
        }
    }
}

/// The PC-stride engine's prefetch addresses, when following an
/// established strided load, are exactly the arithmetic sequence.
#[test]
fn pc_stride_streams_are_arithmetic() {
    let mut meta = SplitMix64::new(0xA217);
    for case in 0..CASES {
        let base = meta.below(1 << 30) * 64;
        let stride = (1 + meta.below(7) as i64) * 32;
        let mut e = psb_core::StreamEngine::new(
            SbConfig::stride_baseline(),
            PcStridePredictor::paper_baseline(),
            "prop".to_owned(),
        );
        let pc = Addr::new(0x4000);
        for i in 0..5i64 {
            e.train(Cycle::ZERO, pc, Addr::new(base).offset(stride * i));
        }
        let last = Addr::new(base).offset(stride * 4);
        e.allocate(Cycle::ZERO, pc, last);
        let mut sink = TestSink::new(1);
        for c in 0..12 {
            e.tick(Cycle::new(c), &mut sink);
        }
        assert!(sink.fetched.len() >= 4, "case {case}");
        for (k, f) in sink.fetched.iter().take(4).enumerate() {
            let expect = last.offset(stride * (k as i64 + 1)).block_base(32);
            assert_eq!(*f, expect, "case {case}: prefetch {k}");
        }
    }
}

/// Allocation filters: an engine with `AllocFilter::None` allocates on
/// every request.
#[test]
fn allocation_counts_are_sane() {
    let mut meta = SplitMix64::new(0xF117);
    for case in 0..CASES {
        let requests = 1 + meta.below(63);
        let mut open = psb_core::StreamEngine::new(
            SbConfig::sequential_baseline().with_filter(AllocFilter::None),
            PcStridePredictor::paper_baseline(),
            "open".to_owned(),
        );
        for i in 0..requests {
            open.allocate(Cycle::new(i), Addr::new(0x100 + i * 4), Addr::new(i * 4096));
        }
        assert_eq!(open.stats().allocations, requests, "case {case}");
        assert_eq!(open.stats().alloc_rejected, 0, "case {case}");
    }
}
