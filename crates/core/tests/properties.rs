//! Property-based tests for the predictors and the stream-buffer engine.

use proptest::prelude::*;
use psb_common::{Addr, BlockAddr, Cycle};
use psb_core::{
    AllocFilter, MarkovTable, PcStridePredictor, Prefetcher, PsbPrefetcher, SbConfig, SbLookup,
    SfmPredictor, StreamPredictor, StreamState, StrideTable, TestSink,
};

proptest! {
    /// A constant-stride training sequence of any base/stride is learned
    /// exactly by the two-delta table.
    #[test]
    fn stride_table_learns_any_constant_stride(
        pc in (0u64..1 << 30).prop_map(|x| x << 2),
        base in 0u64..1 << 40,
        stride in -4096i64..4096,
        n in 4usize..16,
    ) {
        let mut t = StrideTable::paper_baseline();
        for i in 0..n {
            t.train(Addr::new(pc), Addr::new(base).offset(stride * i as i64));
        }
        let info = t.info(Addr::new(pc), Addr::new(0)).unwrap();
        prop_assert_eq!(info.stride, stride);
        prop_assert!(info.stride_streak as usize >= n - 2);
    }

    /// The Markov table never invents transitions: a prediction implies a
    /// previous update whose source shares the index and partial tag, and
    /// the predicted delta is bounded by the configured width.
    #[test]
    fn markov_predictions_are_bounded(
        updates in proptest::collection::vec((0u64..1 << 20, 0u64..1 << 20), 0..128),
        probe in 0u64..1 << 20,
    ) {
        let mut m = MarkovTable::paper_baseline();
        for (a, b) in &updates {
            m.update(BlockAddr(*a), BlockAddr(*b));
        }
        if let Some(next) = m.predict(BlockAddr(probe)) {
            let delta = next.delta(BlockAddr(probe));
            prop_assert!((-32768..=32767).contains(&delta), "delta {} exceeds 16 bits", delta);
            prop_assert!(!updates.is_empty(), "prediction from an empty table");
        }
        prop_assert_eq!(m.updates(), updates.len() as u64);
    }

    /// Whatever the training history, SFM stream predictions always
    /// advance the stream state to the address they return.
    #[test]
    fn sfm_prediction_advances_state(
        trains in proptest::collection::vec((0u64..64, 0u64..1 << 24), 0..64),
        start in 0u64..1 << 24,
        stride in 32i64..256,
    ) {
        let mut p = SfmPredictor::paper_baseline();
        for (pc, addr) in trains {
            p.train(Addr::new(pc << 2), Addr::new(addr * 8));
        }
        let mut s = StreamState::new(Addr::new(4), Addr::new(start * 8), stride);
        for _ in 0..8 {
            let before = s.last_addr;
            let predicted = p.predict(&mut s).unwrap();
            prop_assert_eq!(s.last_addr, predicted);
            prop_assert_ne!(predicted, before, "stride >= 32 never predicts in place");
        }
    }

    /// Engine invariants under arbitrary interleavings of training,
    /// allocation, lookups and ticks: used <= issued, hits <= lookups,
    /// and no block is ever tracked by two buffers.
    #[test]
    fn engine_invariants(
        events in proptest::collection::vec((0u8..4, 0u64..64, 0u64..1 << 16), 1..256),
    ) {
        let mut e = PsbPrefetcher::psb(SbConfig::psb_conf_priority());
        let mut sink = TestSink::new(20);
        let mut now = Cycle::ZERO;
        for (kind, pc, slot) in events {
            now += 1;
            let pc = Addr::new(0x1000 + pc * 4);
            let addr = Addr::new(0x10_0000 + slot * 32);
            match kind {
                0 => e.train(now, pc, addr),
                1 => e.allocate(now, pc, addr),
                2 => { e.lookup(now, addr); }
                _ => e.tick(now, &mut sink),
            }
            let s = e.stats();
            prop_assert!(s.used <= s.issued);
            prop_assert!(s.hits <= s.lookups);
            prop_assert!(s.predictions >= s.suppressed);

            // Non-overlap: each block tracked at most once.
            let mut blocks: Vec<u64> = e
                .buffers()
                .iter()
                .flat_map(|b| b.entries().iter().filter_map(|en| en.block()).map(|b| b.0))
                .collect();
            let n = blocks.len();
            blocks.sort_unstable();
            blocks.dedup();
            prop_assert_eq!(blocks.len(), n, "duplicate tracked block");
        }
    }

    /// A lookup hit always frees the entry: probing the same block again
    /// without new predictions misses.
    #[test]
    fn lookup_hits_consume_entries(laps in 2usize..6, nodes in 8u64..64) {
        let mut e = PsbPrefetcher::psb(SbConfig::psb_conf_priority());
        let pc = Addr::new(0x1000);
        let mut now = Cycle::ZERO;
        // Strided misses train + allocate.
        for lap in 0..laps {
            for i in 0..nodes {
                now += 3;
                let addr = Addr::new(0x10_0000 + i * 64 + lap as u64 * nodes * 64);
                e.train(now, pc, addr);
                if matches!(e.lookup(now, addr), SbLookup::Miss) {
                    e.allocate(now, pc, addr);
                }
                let mut sink = TestSink::new(1);
                e.tick(now, &mut sink);
            }
        }
        // Any block currently Ready: hit once, then miss.
        let ready_block = e.buffers().iter().flat_map(|b| b.entries()).find_map(|en| match en {
            psb_core::SbEntry::Ready { block } => Some(*block),
            _ => None,
        });
        if let Some(block) = ready_block {
            let addr = block.base(32);
            let first = matches!(e.lookup(now + 10, addr), SbLookup::Hit { .. });
            let second = matches!(e.lookup(now + 11, addr), SbLookup::Miss);
            prop_assert!(first, "ready block must hit");
            prop_assert!(second, "hit must free the entry");
        }
    }

    /// The PC-stride engine's prefetch addresses, when following an
    /// established strided load, are exactly the arithmetic sequence.
    #[test]
    fn pc_stride_streams_are_arithmetic(
        base in (0u64..1 << 30).prop_map(|x| x * 64),
        stride_blocks in 1i64..8,
    ) {
        let stride = stride_blocks * 32;
        let mut e = psb_core::StreamEngine::new(
            SbConfig::stride_baseline(),
            PcStridePredictor::paper_baseline(),
            "prop".to_owned(),
        );
        let pc = Addr::new(0x4000);
        for i in 0..5i64 {
            e.train(Cycle::ZERO, pc, Addr::new(base).offset(stride * i));
        }
        let last = Addr::new(base).offset(stride * 4);
        e.allocate(Cycle::ZERO, pc, last);
        let mut sink = TestSink::new(1);
        for c in 0..12 {
            e.tick(Cycle::new(c), &mut sink);
        }
        prop_assert!(sink.fetched.len() >= 4);
        for (k, f) in sink.fetched.iter().take(4).enumerate() {
            let expect = last.offset(stride * (k as i64 + 1)).block_base(32);
            prop_assert_eq!(*f, expect);
        }
    }

    /// Allocation filters: an engine with `AllocFilter::None` allocates on
    /// every request; the others never allocate more than requested.
    #[test]
    fn allocation_counts_are_sane(requests in 1u64..64) {
        let mut open = psb_core::StreamEngine::new(
            SbConfig::sequential_baseline().with_filter(AllocFilter::None),
            PcStridePredictor::paper_baseline(),
            "open".to_owned(),
        );
        for i in 0..requests {
            open.allocate(Cycle::new(i), Addr::new(0x100 + i * 4), Addr::new(i * 4096));
        }
        prop_assert_eq!(open.stats().allocations, requests);
        prop_assert_eq!(open.stats().alloc_rejected, 0);
    }
}
