//! `turb3d` — an isotropic-turbulence (SPEC95 FORTRAN) analog: the
//! stride-friendly control case.
//!
//! The model performs stencil-style passes over three 24³ double-precision
//! grids (≈110 KB each), sweeping along the x, y and z axes in turn. The
//! three phases produce unit-block, 192-byte and 4608-byte strides —
//! exactly the access patterns a PC-stride stream buffer captures, which
//! is why the paper expects PSB ≈ PC-stride here ("our PSB architecture
//! achieves basically the same performance as the PC-stride
//! architecture").

use crate::heap::SyntheticHeap;
use crate::trace::TraceBuilder;
use psb_common::Addr;
use psb_cpu::{DynInst, Op};

const TURB: Addr = Addr::new(0x45_0000);
const XLOOP: Addr = Addr::new(0x45_0040);
const YLOOP: Addr = Addr::new(0x45_0080);
const ZLOOP: Addr = Addr::new(0x45_00c0);

const N: usize = 24;

/// Element visit order for each sweep axis (flattened (z,y,x) storage).
fn order(axis: usize) -> Vec<usize> {
    let mut v = Vec::with_capacity(N * N * N);
    match axis {
        0 => {
            // x innermost: consecutive addresses.
            for z in 0..N {
                for y in 0..N {
                    for x in 0..N {
                        v.push((z * N + y) * N + x);
                    }
                }
            }
        }
        1 => {
            // y innermost: stride N elements.
            for z in 0..N {
                for x in 0..N {
                    for y in 0..N {
                        v.push((z * N + y) * N + x);
                    }
                }
            }
        }
        _ => {
            // z innermost: stride N*N elements.
            for y in 0..N {
                for x in 0..N {
                    for z in 0..N {
                        v.push((z * N + y) * N + x);
                    }
                }
            }
        }
    }
    v
}

/// Generates the `turb3d` trace. `scale` multiplies the number of
/// timesteps.
pub fn trace(scale: u32) -> Vec<DynInst> {
    let scale = scale.max(1);
    let mut heap = SyntheticHeap::new(Addr::new(0x1000_0000), 0x54_5552); // "TUR"
    let grid_bytes = (N * N * N * 8) as u64;
    let u = heap.alloc(grid_bytes);
    let v = heap.alloc(grid_bytes);
    let w = heap.alloc(grid_bytes);
    let scratch = heap.alloc(512);

    let orders = [order(0), order(1), order(2)];
    let loops = [XLOOP, YLOOP, ZLOOP];

    let target = 300_000usize * scale as usize;
    let mut b = TraceBuilder::new(TURB);

    'steps: loop {
        b.expect_pc(TURB);
        b.alu(6, None, None);
        b.store(Some(6), None, Addr::new(0x2000_0400));
        b.jump(XLOOP);

        for phase in 0..3 {
            let head = loops[phase];
            let ord = &orders[phase];
            for (i, &idx) in ord.iter().enumerate() {
                b.expect_pc(head);
                let off = idx as i64 * 8;
                // Two strided grid streams (distinct load PCs, as the
                // real code reads several arrays per element) plus a hot
                // 512-byte pencil accumulator.
                let pencil = scratch.offset((i as i64 % 64) * 8);
                b.load(2, Some(6), u.offset(off));
                b.load(3, Some(6), v.offset(off));
                b.load(4, Some(6), pencil);
                b.op(Op::FpMult, 5, Some(2), Some(3));
                b.op(Op::FpAdd, 5, Some(5), Some(4));
                b.store(Some(5), Some(6), pencil);
                // Periodically flush a result line to the output grid.
                let flush = i % 8 == 7;
                b.cond(Some(5), !flush, head.offset(0x24));
                if flush {
                    b.store(Some(5), Some(6), w.offset(off));
                    b.op(Op::FpMult, 4, Some(4), Some(5));
                }
                b.expect_pc(head.offset(0x24));
                b.alu(6, Some(6), None);
                b.cond(Some(6), i + 1 < ord.len(), head);
            }
            // Phase epilogue: fall through to the next phase head.
            match phase {
                0 => b.jump(YLOOP),
                1 => b.jump(ZLOOP),
                _ => {
                    if b.len() >= target {
                        b.jump(TURB);
                        break 'steps;
                    }
                    b.jump(TURB);
                }
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{find_control_flow_violation, TraceMix};

    #[test]
    fn trace_is_control_flow_consistent() {
        let t = trace(1);
        assert_eq!(find_control_flow_violation(&t), None);
    }

    #[test]
    fn phases_have_the_expected_strides() {
        let t = trace(1);
        let loads_at = |pc: Addr| -> Vec<u64> {
            t.iter()
                .filter(|i| i.op.is_load() && i.pc == pc)
                .map(|i| i.mem_addr.unwrap().raw())
                .take(200)
                .collect()
        };
        let x = loads_at(XLOOP);
        assert!(x.windows(2).all(|w| w[1] - w[0] == 8), "x sweep is unit stride");
        let y = loads_at(YLOOP);
        let y_strided = y.windows(2).filter(|w| w[1].wrapping_sub(w[0]) == (N as u64) * 8).count();
        assert!(y_strided * 25 > y.len() * 23, "y sweep strides {} bytes", N * 8);
        let z = loads_at(ZLOOP);
        let z_stride = (N * N * 8) as u64;
        let z_strided = z.windows(2).filter(|w| w[1].wrapping_sub(w[0]) == z_stride).count();
        assert!(z_strided * 25 > z.len() * 23, "z sweep strides {z_stride} bytes");
    }

    #[test]
    fn fortran_like_mix() {
        let mix = TraceMix::of(&trace(1));
        assert!(mix.load_fraction() > 0.2, "loads {:.3}", mix.load_fraction());
        assert!(mix.store_fraction() > 0.1);
        assert!(mix.fp as f64 / mix.total as f64 > 0.2, "fp-heavy");
    }

    #[test]
    fn branches_are_highly_biased() {
        let t = trace(1);
        let (mut taken, mut total) = (0u64, 0u64);
        for i in &t {
            if let Some(bi) = i.branch {
                total += 1;
                taken += bi.taken as u64;
            }
        }
        assert!(taken as f64 / total as f64 > 0.9, "loop back-edges dominate");
    }

    #[test]
    fn determinism() {
        let a = trace(1);
        let b = trace(1);
        assert_eq!(a.len(), b.len());
        assert_eq!(&a[..100], &b[..100]);
    }
}
