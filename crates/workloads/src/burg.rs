//! `burg` — a BURS tree-parser generator analog.
//!
//! The model: repeated recursive walks over a ~3000-node binary IR tree
//! whose nodes live at shuffled heap addresses, combined with rule-table
//! lookups (a 16 KB static table). Recursion spills the node pointer to
//! the stack across calls, exercising the RAS and store-to-load
//! forwarding.
//!
//! What this preserves from the real benchmark: a pointer-heavy tree
//! traversal in a stable, non-strided order (Markov-predictable miss
//! stream) mixed with table-indexed loads and deep call chains.

use crate::heap::SyntheticHeap;
use crate::trace::TraceBuilder;
use psb_common::{Addr, SplitMix64};
use psb_cpu::DynInst;

const WALK: Addr = Addr::new(0x41_0000);
const LEAF: Addr = Addr::new(0x41_0080);
const MAIN: Addr = Addr::new(0x41_0100);
const TABLE: Addr = Addr::new(0x2100_0000);
const STACK: Addr = Addr::new(0x10f0_0000);
const NODES: usize = 1501;

struct Tree {
    addr: Vec<Addr>,
    left: Vec<Option<usize>>,
    right: Vec<Option<usize>>,
    root: usize,
}

fn build_tree(rng: &mut SplitMix64, addrs: Vec<Addr>) -> Tree {
    let n = addrs.len();
    let mut tree = Tree { addr: addrs, left: vec![None; n], right: vec![None; n], root: 0 };
    // Random binary shape: recursively split the index range.
    fn split(tree: &mut Tree, rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
        let node = lo;
        let rest = lo + 1..hi;
        if rest.is_empty() {
            return node;
        }
        let pivot = lo + 1 + rng.below((hi - lo - 1) as u64) as usize;
        if pivot > lo + 1 {
            tree.left[node] = Some(split(tree, rng, lo + 1, pivot));
        }
        if pivot < hi {
            tree.right[node] = Some(split(tree, rng, pivot, hi));
        }
        node
    }
    tree.root = split(&mut tree, rng, 0, n);
    tree
}

fn emit_walk(b: &mut TraceBuilder, tree: &Tree, node: usize, depth: u64, rng: &mut SplitMix64) {
    b.expect_pc(WALK);
    let addr = tree.addr[node];
    let sp = STACK.offset(-(16 * depth as i64));
    let table_slot = TABLE.offset(((rng.next_u64() ^ node as u64) % 2048) as i64 * 8);

    b.alu(7, Some(1), None); //        save node pointer
    b.load(2, Some(7), addr.offset(8)); // op field
    b.alu(3, Some(2), None); //        table index
    b.load(4, Some(3), table_slot); // rule table
    b.alu(5, Some(4), Some(3));
    let is_leaf = tree.left[node].is_none() && tree.right[node].is_none();
    b.cond(Some(5), is_leaf, LEAF);
    if is_leaf {
        b.expect_pc(LEAF);
        b.alu(5, Some(3), None);
        b.store(Some(5), Some(7), addr.offset(24));
        b.ret();
        return;
    }
    b.store(Some(7), None, sp); //     spill across the calls
    match (tree.left[node], tree.right[node]) {
        (Some(l), right) => {
            b.load(1, Some(7), addr); //   left child pointer
            b.call(WALK);
            emit_walk(b, tree, l, depth + 1, rng);
            b.load(7, None, sp); //        restore (forwards from the spill)
            b.load(1, Some(7), addr.offset(16)); // right child pointer
            if let Some(r) = right {
                b.call(WALK);
                emit_walk(b, tree, r, depth + 1, rng);
            }
            b.alu(5, Some(5), None);
            b.ret();
        }
        (None, Some(r)) => {
            b.load(1, Some(7), addr); //   unified slot read
            b.call(WALK);
            emit_walk(b, tree, r, depth + 1, rng);
            b.load(7, None, sp);
            b.load(1, Some(7), addr.offset(16));
            b.alu(5, Some(5), None);
            b.ret();
        }
        (None, None) => unreachable!("leaf handled above"),
    }
}

/// Generates the `burg` trace. `scale` multiplies the number of full tree
/// walks.
pub fn trace(scale: u32) -> Vec<DynInst> {
    let scale = scale.max(1);
    let mut heap = SyntheticHeap::new(Addr::new(0x1000_0000), 0x42_5552); // "BUR"
    let mut rng = SplitMix64::new(1986);
    let addrs = heap.alloc_shuffled(NODES, 64);
    let tree = build_tree(&mut rng, addrs);
    let root_cell = heap.alloc(16);

    let target = 300_000usize * scale as usize;
    let mut b = TraceBuilder::new(MAIN);
    // Table indices must repeat across walks for cache behaviour to be
    // stable: reseed the per-walk RNG identically each lap.
    loop {
        b.expect_pc(MAIN);
        b.alu(6, None, None);
        b.load(1, None, root_cell); // root pointer
        b.call(WALK);
        let mut table_rng = SplitMix64::new(77);
        emit_walk(&mut b, &tree, tree.root, 0, &mut table_rng);
        b.alu(8, Some(5), None);
        b.store(Some(8), None, root_cell.offset(8));
        if b.len() >= target {
            b.jump(MAIN);
            break;
        }
        b.jump(MAIN);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{find_control_flow_violation, TraceMix};
    use psb_cpu::{BranchKind, Op};

    #[test]
    fn trace_is_control_flow_consistent() {
        let t = trace(1);
        assert_eq!(find_control_flow_violation(&t), None);
    }

    #[test]
    fn recursion_produces_calls_and_returns() {
        let t = trace(1);
        let calls = t
            .iter()
            .filter(|i| matches!(i.branch, Some(bi) if bi.kind == BranchKind::Call))
            .count();
        let rets = t
            .iter()
            .filter(|i| matches!(i.branch, Some(bi) if bi.kind == BranchKind::Return))
            .count();
        assert!(calls > 1000);
        // Every walk's calls and returns balance except the trailing
        // truncation at most one walk deep.
        assert!((calls as i64 - rets as i64).abs() < (NODES as i64), "{calls} vs {rets}");
    }

    #[test]
    fn mix_is_load_heavy_with_tables() {
        let t = trace(1);
        let mix = TraceMix::of(&t);
        assert!(mix.load_fraction() > 0.2, "loads {:.3}", mix.load_fraction());
        assert!(mix.store_fraction() > 0.03);
    }

    #[test]
    fn walks_repeat_identically() {
        // The node-visit order (addresses of [node+8] loads) must repeat
        // exactly lap after lap so the Markov predictor can learn it.
        let t = trace(1);
        let visits: Vec<u64> = t
            .iter()
            .filter(|i| i.op == Op::Load && i.mem_addr.is_some())
            .filter(|i| {
                let a = i.mem_addr.unwrap().raw();
                (0x1000_0000..0x10f0_0000).contains(&a) && a % 64 == 8
            })
            .map(|i| i.mem_addr.unwrap().raw())
            .collect();
        assert!(visits.len() > 2 * NODES, "need at least two walks");
        assert_eq!(&visits[..NODES], &visits[NODES..2 * NODES]);
    }

    #[test]
    fn determinism() {
        let a = trace(1);
        let b = trace(1);
        assert_eq!(a.len(), b.len());
        assert_eq!(&a[..100], &b[..100]);
    }
}
