//! Trace construction helpers.

use psb_common::Addr;
use psb_cpu::{BranchInfo, BranchKind, DynInst, Op, Reg};

/// Builds a correct-path dynamic instruction trace while enforcing the
/// program-order invariant the pipeline's fetch stage relies on: after a
/// non-branch (or a not-taken branch) at `pc`, the next instruction is at
/// `pc + 4`; after a taken branch, it is at the branch target.
///
/// Generators describe control flow with explicit code addresses (as a
/// compiler would lay out basic blocks); the builder checks consistency
/// at every emission, so a malformed generator fails fast instead of
/// producing an impossible fetch stream.
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_workloads::TraceBuilder;
///
/// let mut b = TraceBuilder::new(Addr::new(0x1000));
/// b.alu(1, None, None);
/// b.jump(Addr::new(0x1000)); // loop back
/// b.alu(2, Some(1), None);
/// let trace = b.finish();
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace[2].pc, Addr::new(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    insts: Vec<DynInst>,
    pc: Addr,
    call_stack: Vec<Addr>,
}

impl TraceBuilder {
    /// Starts a trace whose first instruction is at `entry`.
    pub fn new(entry: Addr) -> Self {
        TraceBuilder { insts: Vec::new(), pc: entry, call_stack: Vec::new() }
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The address the next instruction will be emitted at.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Asserts the builder is positioned at `pc` — use at basic-block
    /// heads to catch layout mistakes.
    ///
    /// # Panics
    ///
    /// Panics if the current position differs.
    pub fn expect_pc(&self, pc: Addr) {
        assert_eq!(self.pc, pc, "control-flow layout error: at {} but expected {}", self.pc, pc);
    }

    fn push(&mut self, inst: DynInst) {
        debug_assert_eq!(inst.pc, self.pc);
        self.pc = inst.next_pc();
        self.insts.push(inst);
    }

    /// Emits an integer ALU op.
    pub fn alu(&mut self, dst: u8, src1: Option<u8>, src2: Option<u8>) {
        self.push(DynInst::alu(self.pc, Reg::new(dst), src1.map(Reg::new), src2.map(Reg::new)));
    }

    /// Emits an arbitrary non-memory, non-branch operation (e.g. FP).
    pub fn op(&mut self, op: Op, dst: u8, src1: Option<u8>, src2: Option<u8>) {
        assert!(!op.is_mem() && op != Op::Branch, "use the dedicated emitters for {op:?}");
        self.push(DynInst {
            pc: self.pc,
            op,
            dst: Some(Reg::new(dst)),
            src1: src1.map(Reg::new),
            src2: src2.map(Reg::new),
            mem_addr: None,
            mem_size: 0,
            branch: None,
        });
    }

    /// Emits an 8-byte load into `dst`, address-generated from `base`.
    pub fn load(&mut self, dst: u8, base: Option<u8>, addr: Addr) {
        self.push(DynInst::load(self.pc, Reg::new(dst), base.map(Reg::new), addr, 8));
    }

    /// Emits an 8-byte store of `data`, address-generated from `base`.
    pub fn store(&mut self, data: Option<u8>, base: Option<u8>, addr: Addr) {
        self.push(DynInst::store(self.pc, data.map(Reg::new), base.map(Reg::new), addr, 8));
    }

    /// Emits a conditional branch to `target`, depending on `src`.
    pub fn cond(&mut self, src: Option<u8>, taken: bool, target: Addr) {
        self.push(DynInst::branch(
            self.pc,
            src.map(Reg::new),
            BranchInfo { kind: BranchKind::Conditional, taken, target },
        ));
    }

    /// Emits an unconditional direct jump to `target`.
    pub fn jump(&mut self, target: Addr) {
        self.push(DynInst::branch(
            self.pc,
            None,
            BranchInfo { kind: BranchKind::Jump, taken: true, target },
        ));
    }

    /// Emits an indirect jump through a register to `target` (predicted
    /// via the BTB, so target changes cost mispredictions).
    pub fn indirect(&mut self, src: Option<u8>, target: Addr) {
        self.push(DynInst::branch(
            self.pc,
            src.map(Reg::new),
            BranchInfo { kind: BranchKind::Indirect, taken: true, target },
        ));
    }

    /// Emits a direct call to `target`, recording the return address.
    pub fn call(&mut self, target: Addr) {
        self.call_stack.push(self.pc.offset(4));
        self.push(DynInst::branch(
            self.pc,
            None,
            BranchInfo { kind: BranchKind::Call, taken: true, target },
        ));
    }

    /// Emits a return to the most recent call site.
    ///
    /// # Panics
    ///
    /// Panics if there is no pending call.
    pub fn ret(&mut self) {
        let target = self.call_stack.pop().expect("return without a pending call");
        self.push(DynInst::branch(
            self.pc,
            None,
            BranchInfo { kind: BranchKind::Return, taken: true, target },
        ));
    }

    /// Finishes the trace.
    pub fn finish(self) -> Vec<DynInst> {
        self.insts
    }
}

/// Checks the program-order invariant over a full trace; returns the
/// index of the first violation, if any.
///
/// Every generator's output is validated in tests with this function.
pub fn find_control_flow_violation(trace: &[DynInst]) -> Option<usize> {
    trace.windows(2).position(|w| w[1].pc != w[0].next_pc()).map(|i| i + 1)
}

/// Summary statistics of a trace's instruction mix.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct TraceMix {
    /// Total instructions.
    pub total: usize,
    /// Loads.
    pub loads: usize,
    /// Stores.
    pub stores: usize,
    /// Branches.
    pub branches: usize,
    /// Floating-point operations.
    pub fp: usize,
}

impl TraceMix {
    /// Computes the mix of `trace`.
    pub fn of(trace: &[DynInst]) -> Self {
        let mut mix = TraceMix { total: trace.len(), ..Default::default() };
        for i in trace {
            match i.op {
                Op::Load => mix.loads += 1,
                Op::Store => mix.stores += 1,
                Op::Branch => mix.branches += 1,
                Op::FpAdd | Op::FpMult | Op::FpDiv => mix.fp += 1,
                _ => {}
            }
        }
        mix
    }

    /// Load fraction of the trace.
    pub fn load_fraction(&self) -> f64 {
        self.loads as f64 / self.total.max(1) as f64
    }

    /// Store fraction of the trace.
    pub fn store_fraction(&self) -> f64 {
        self.stores as f64 / self.total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_pcs_advance_by_four() {
        let mut b = TraceBuilder::new(Addr::new(0x100));
        b.alu(1, None, None);
        b.load(2, Some(1), Addr::new(0x9000));
        b.store(Some(2), None, Addr::new(0x9008));
        let t = b.finish();
        assert_eq!(t[0].pc, Addr::new(0x100));
        assert_eq!(t[1].pc, Addr::new(0x104));
        assert_eq!(t[2].pc, Addr::new(0x108));
        assert_eq!(find_control_flow_violation(&t), None);
    }

    #[test]
    fn taken_branches_redirect() {
        let mut b = TraceBuilder::new(Addr::new(0x100));
        b.cond(None, true, Addr::new(0x200));
        b.alu(1, None, None); // must be at 0x200
        let t = b.finish();
        assert_eq!(t[1].pc, Addr::new(0x200));
        assert_eq!(find_control_flow_violation(&t), None);
    }

    #[test]
    fn not_taken_branches_fall_through() {
        let mut b = TraceBuilder::new(Addr::new(0x100));
        b.cond(None, false, Addr::new(0x200));
        b.alu(1, None, None);
        let t = b.finish();
        assert_eq!(t[1].pc, Addr::new(0x104));
    }

    #[test]
    fn calls_and_returns_pair_up() {
        let mut b = TraceBuilder::new(Addr::new(0x100));
        b.call(Addr::new(0x800));
        b.alu(1, None, None); // in callee at 0x800
        b.ret(); // back to 0x104
        b.alu(2, None, None);
        let t = b.finish();
        assert_eq!(t[1].pc, Addr::new(0x800));
        assert_eq!(t[3].pc, Addr::new(0x104));
        assert_eq!(find_control_flow_violation(&t), None);
    }

    #[test]
    fn nested_calls_unwind_in_order() {
        let mut b = TraceBuilder::new(Addr::new(0x100));
        b.call(Addr::new(0x800));
        b.call(Addr::new(0x900));
        b.ret(); // to 0x804
        b.ret(); // to 0x104
        b.alu(1, None, None);
        let t = b.finish();
        assert_eq!(t[2].branch.unwrap().target, Addr::new(0x804));
        assert_eq!(t[3].branch.unwrap().target, Addr::new(0x104));
    }

    #[test]
    #[should_panic(expected = "return without a pending call")]
    fn unbalanced_return_panics() {
        let mut b = TraceBuilder::new(Addr::new(0x100));
        b.ret();
    }

    #[test]
    #[should_panic(expected = "layout error")]
    fn expect_pc_catches_layout_bugs() {
        let mut b = TraceBuilder::new(Addr::new(0x100));
        b.alu(1, None, None);
        b.expect_pc(Addr::new(0x200));
    }

    #[test]
    fn violation_finder_flags_broken_traces() {
        let mut b = TraceBuilder::new(Addr::new(0x100));
        b.alu(1, None, None);
        b.alu(2, None, None);
        let mut t = b.finish();
        t[1].pc = Addr::new(0x9999); // corrupt
        assert_eq!(find_control_flow_violation(&t), Some(1));
    }

    #[test]
    fn mix_counts() {
        let mut b = TraceBuilder::new(Addr::new(0x100));
        b.alu(1, None, None);
        b.load(2, None, Addr::new(0x9000));
        b.store(None, None, Addr::new(0x9008));
        b.op(psb_cpu::Op::FpAdd, 3, None, None);
        b.jump(Addr::new(0x100));
        let mix = TraceMix::of(&b.finish());
        assert_eq!(mix.total, 5);
        assert_eq!(mix.loads, 1);
        assert_eq!(mix.stores, 1);
        assert_eq!(mix.branches, 1);
        assert_eq!(mix.fp, 1);
        assert_eq!(mix.load_fraction(), 0.2);
    }
}
