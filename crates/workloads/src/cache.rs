//! Process-wide cache of generated benchmark traces.
//!
//! Sweeps run many machine configurations over the same `(benchmark,
//! scale)` trace, and regenerating several hundred thousand instructions
//! per cell dominated the harness's wall-clock. This module hands every
//! caller a shared, immutable [`Arc`] of the trace instead: N configs of
//! one benchmark share one generation.
//!
//! The synchronization is [`psb_model::keyed::KeyedOnce`]: generation is
//! deduplicated across threads, the map lock is only held to look up or
//! insert a per-key cell (never during generation), so two sweep workers
//! racing for the *same* key block on that key's cell while workers on
//! *different* keys generate concurrently. Because `KeyedOnce` is built
//! on the psb-model shims, `cargo xtask model` explores this cache's
//! interleavings directly — including `clear_trace_cache` racing
//! `shared_trace`.
//!
//! Traces are retained until [`clear_trace_cache`] is called; a sweep
//! binary that walks many scales can drop the old generation between
//! phases.

use crate::Benchmark;
use psb_cpu::DynInst;
use psb_model::keyed::KeyedOnce;
use std::sync::Arc;

/// An immutable, shareable benchmark trace.
pub type SharedTrace = Arc<Vec<DynInst>>;

static CACHE: KeyedOnce<(Benchmark, u32), SharedTrace> = KeyedOnce::new();

impl Benchmark {
    /// Returns this benchmark's trace at `scale`, generating it on first
    /// use and serving the cached [`Arc`] afterwards.
    ///
    /// Traces are deterministic (fixed-seed generators), so every caller
    /// observes the exact instruction stream [`Benchmark::trace`] would
    /// have produced — sharing changes memory traffic, never results.
    pub fn shared_trace(self, scale: u32) -> SharedTrace {
        CACHE.get_or_init((self, scale), || Arc::new(self.trace(scale)))
    }
}

/// Number of generated traces currently cached (diagnostics and tests).
pub fn trace_cache_len() -> usize {
    CACHE.initialized_len()
}

/// Drops every cached trace, releasing the memory. Traces handed out
/// earlier stay alive through their own `Arc`s; later `shared_trace`
/// calls regenerate.
pub fn clear_trace_cache() {
    CACHE.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The cache is process-global and the harness runs tests on multiple
    // threads, so everything — including the destructive clear — lives in
    // one sequential test body.

    #[test]
    fn cache_shares_dedups_and_clears() {
        // Cached lookups observe the exact generated stream and share one
        // allocation.
        let a = Benchmark::Turb3d.shared_trace(1);
        assert_eq!(*a, Benchmark::Turb3d.trace(1));
        let b = Benchmark::Turb3d.shared_trace(1);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one trace");
        assert!(trace_cache_len() >= 1);

        // Racing threads on one uncached key generate exactly once.
        let handles: Vec<_> =
            (0..4).map(|_| std::thread::spawn(|| Benchmark::Gs.shared_trace(1))).collect();
        let traces: Vec<SharedTrace> =
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t), "racing threads must share one generation");
        }

        // A clear racing in-flight lookups must neither wedge nor corrupt:
        // every lookup still yields the full deterministic trace, whether
        // it won (pre-clear cell) or lost (regenerated) the race. The
        // exhaustive version of this race runs under `cargo xtask model`;
        // this is the live-threads smoke test.
        let expected_len = Benchmark::DeltaBlue.shared_trace(1).len();
        clear_trace_cache();
        let racers: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    if i % 2 == 0 {
                        clear_trace_cache();
                    }
                    Benchmark::DeltaBlue.shared_trace(1)
                })
            })
            .collect();
        for h in racers {
            let t = h.join().expect("racer panicked");
            assert_eq!(t.len(), expected_len, "clear/lookup race returned a torn trace");
        }

        // Clearing releases cache entries but never live hand-outs, and
        // later lookups regenerate the identical stream.
        clear_trace_cache();
        assert_eq!(trace_cache_len(), 0);
        assert!(a.len() >= 300_000, "cleared cache must not invalidate live traces");
        let regenerated = Benchmark::Turb3d.shared_trace(1);
        assert_eq!(*a, *regenerated);
        assert!(!Arc::ptr_eq(&a, &regenerated), "post-clear lookups regenerate");
    }
}
