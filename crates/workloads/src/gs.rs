//! `gs` — a Ghostscript (PostScript → JPEG) analog.
//!
//! The model alternates three phases per output band, mirroring the real
//! interpreter's behaviour:
//!
//! 1. **Raster**: strided read-modify-write sweeps over a 64 KB band
//!    buffer (stride-predictor food, FP blending ops).
//! 2. **Display list**: a pointer chase over ~1200 shuffled graphics
//!    objects (Markov-predictor food).
//! 3. **Glyph cache**: hash-scattered loads over a 48 KB region (noise —
//!    trains confidence down for those PCs).
//!
//! What this preserves: a *mixed* workload where neither predictor wins
//! alone and useless prefetches are possible, so confidence filtering
//! shows moderate (not dramatic) gains — as in the paper's Figure 5.

use crate::heap::SyntheticHeap;
use crate::trace::TraceBuilder;
use psb_common::{Addr, SplitMix64};
use psb_cpu::{DynInst, Op};

const BAND: Addr = Addr::new(0x43_0000);
const RASTER: Addr = Addr::new(0x43_0040);
const DLIST: Addr = Addr::new(0x43_0080);
const GLYPH: Addr = Addr::new(0x43_00c0);

const BAND_BYTES: u64 = 64 * 1024;
const DLIST_NODES: usize = 1200;
const GLYPH_BYTES: u64 = 48 * 1024;

/// Generates the `gs` trace. `scale` multiplies the number of bands.
pub fn trace(scale: u32) -> Vec<DynInst> {
    let scale = scale.max(1);
    let mut heap = SyntheticHeap::new(Addr::new(0x1000_0000), 0x47_5320); // "GS "
    let mut rng = SplitMix64::new(1988);

    let band_buf = heap.alloc(BAND_BYTES);
    let dlist = heap.alloc_shuffled(DLIST_NODES, 64);
    let glyphs = heap.alloc(GLYPH_BYTES);

    let target = 300_000usize * scale as usize;
    let mut b = TraceBuilder::new(BAND);

    loop {
        b.expect_pc(BAND);
        b.alu(6, None, None);
        b.store(Some(6), None, Addr::new(0x2000_0200));
        b.jump(RASTER);

        // Phase 1: strided sweep, 64-byte steps (2 blocks per step), with
        // a hot palette lookup per pixel group.
        let steps = (BAND_BYTES / 64) as usize;
        for i in 0..steps {
            b.expect_pc(RASTER);
            let a = band_buf.offset(64 * i as i64);
            b.load(2, Some(6), a);
            b.load(5, Some(2), Addr::new(0x2000_0280).offset((i % 32) as i64 * 8));
            b.op(Op::FpMult, 3, Some(2), Some(5));
            b.op(Op::FpAdd, 4, Some(3), Some(4));
            b.store(Some(4), Some(6), a.offset(8));
            b.alu(6, Some(6), None);
            b.cond(Some(6), i + 1 < steps, RASTER);
        }
        b.jump(DLIST);

        // Phase 2: display-list pointer chase with interpreter state.
        for (i, &node) in dlist.iter().enumerate() {
            b.expect_pc(DLIST);
            b.load(2, Some(1), node.offset(8));
            b.load(1, Some(1), node);
            b.load(5, Some(6), Addr::new(0x2000_0300).offset((i % 8) as i64 * 8));
            b.alu(3, Some(2), Some(5));
            b.alu(4, Some(3), None);
            b.cond(Some(6), i + 1 < dlist.len(), DLIST);
        }
        b.jump(GLYPH);

        // Phase 3: hash-scattered glyph lookups.
        for i in 0..400usize {
            b.expect_pc(GLYPH);
            let slot = glyphs.offset((rng.below(GLYPH_BYTES / 8) * 8) as i64);
            b.load(2, Some(5), slot);
            b.alu(5, Some(2), Some(5));
            b.cond(Some(5), i + 1 < 400, GLYPH);
        }

        if b.len() >= target {
            b.jump(BAND);
            break;
        }
        b.jump(BAND);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{find_control_flow_violation, TraceMix};

    #[test]
    fn trace_is_control_flow_consistent() {
        let t = trace(1);
        assert_eq!(find_control_flow_violation(&t), None);
    }

    #[test]
    fn has_strided_and_chased_and_noisy_loads() {
        let t = trace(1);
        // Raster loads at stride 64 within the band buffer.
        let raster: Vec<u64> = t
            .iter()
            .filter(|i| i.op.is_load() && i.pc == RASTER)
            .map(|i| i.mem_addr.unwrap().raw())
            .take(100)
            .collect();
        assert!(raster.windows(2).all(|w| w[1] - w[0] == 64));

        // Chase loads repeat the same irregular order each band.
        let chase: Vec<u64> = t
            .iter()
            .filter(|i| i.op.is_load() && i.pc == DLIST.offset(4))
            .map(|i| i.mem_addr.unwrap().raw())
            .collect();
        assert!(chase.len() >= 2 * DLIST_NODES);
        assert_eq!(&chase[..DLIST_NODES], &chase[DLIST_NODES..2 * DLIST_NODES]);
        let strided =
            chase[..DLIST_NODES].windows(2).filter(|w| w[1].wrapping_sub(w[0]) == 64).count();
        assert!(strided < DLIST_NODES / 4, "chase must not be strided ({strided})");
    }

    #[test]
    fn mix_has_fp_work() {
        let mix = TraceMix::of(&trace(1));
        assert!(mix.fp > 0);
        assert!(mix.load_fraction() > 0.2);
        assert!(mix.store_fraction() > 0.05);
    }

    #[test]
    fn determinism() {
        let a = trace(1);
        let b = trace(1);
        assert_eq!(a.len(), b.len());
        assert_eq!(&a[..100], &b[..100]);
    }
}
