//! `health` — a hierarchical health-care system simulator (Olden suite).
//!
//! The model: a four-level, four-ary tree of villages, each holding a
//! linked list of patients allocated in shuffled heap order. Every
//! simulated day walks every village's patient list (a serialized pointer
//! chase — each node's address is loaded from the previous node), treats
//! patients, and occasionally transfers one up to the parent village,
//! slowly mutating the lists.
//!
//! What this preserves from the real benchmark: an L1-thrashing linked
//! data structure (~220 KB) traversed repeatedly in a stable but
//! non-strided order — the miss stream a Markov predictor captures and a
//! stride predictor cannot.

use crate::heap::SyntheticHeap;
use crate::trace::TraceBuilder;
use psb_common::{Addr, SplitMix64};
use psb_cpu::DynInst;

/// Code layout (all in one I-cache-friendly 4 KB region).
const DAY: Addr = Addr::new(0x40_0000);
const VILLAGE: Addr = Addr::new(0x40_0040);
const PLOOP: Addr = Addr::new(0x40_0080);
/// Instruction inside the patient loop that the transfer path rejoins.
const PCONT: Addr = Addr::new(0x40_00a8);
/// Per-village scratch state (hot, L1-resident).
const SCRATCH: Addr = Addr::new(0x2000_1000);
const XFER: Addr = Addr::new(0x40_0100);
const VEND: Addr = Addr::new(0x40_0140);

const VILLAGE_LEVELS: usize = 4;
const PATIENT_BYTES: u64 = 64;

struct Village {
    header: Addr,
    parent: Option<usize>,
    patients: Vec<Addr>,
}

/// Generates the `health` trace. `scale` multiplies the number of
/// simulated days (the data footprint is fixed).
pub fn trace(scale: u32) -> Vec<DynInst> {
    let scale = scale.max(1);
    let mut heap = SyntheticHeap::new(Addr::new(0x1000_0000), 0x48_4541); // "HEA"
    let mut rng = SplitMix64::new(2001);

    // Build the village tree: 1 + 4 + 16 + 64 villages.
    let mut villages: Vec<Village> = Vec::new();
    let headers = heap.alloc_array(85, 64);
    let mut idx = 0;
    let mut level_start = vec![0usize];
    for level in 0..VILLAGE_LEVELS {
        let count = 4usize.pow(level as u32);
        for i in 0..count {
            let parent = (level > 0).then(|| level_start[level - 1] + i / 4);
            villages.push(Village { header: headers[idx], parent, patients: Vec::new() });
            idx += 1;
        }
        level_start.push(idx);
    }
    // Patients: more in the leaves, allocated shuffled so list order is
    // decoupled from address order.
    // ~1700 patients x 64 B ≈ 109 KB: several times the 32 KB L1, and a
    // miss working set the 2K-entry Markov table can actually cover (as
    // the paper's programs' hot structures do — Figure 4).
    let mut all_patients = heap.alloc_shuffled(1700, PATIENT_BYTES);
    for (i, v) in villages.iter_mut().enumerate() {
        let n = if i == 0 { 12 } else { 14 + (i % 13) };
        for _ in 0..n {
            if let Some(p) = all_patients.pop() {
                v.patients.push(p);
            }
        }
    }

    let target = 300_000usize * scale as usize;
    let mut b = TraceBuilder::new(DAY);
    let mut pending_transfers: Vec<(usize, usize)> = Vec::new();

    'days: loop {
        b.expect_pc(DAY);
        // Day prologue.
        b.alu(6, None, None);
        b.alu(7, Some(6), None);
        b.store(Some(7), None, Addr::new(0x2000_0000)); // day counter
        b.jump(VILLAGE);

        for v in 0..villages.len() {
            b.expect_pc(VILLAGE);
            // Village prologue: load the header (array-strided).
            b.load(2, Some(6), villages[v].header);
            b.alu(3, Some(2), None);
            b.alu(6, Some(6), None);
            let empty = villages[v].patients.is_empty();
            // Skip empty villages straight to the epilogue.
            b.cond(Some(3), empty, VEND);
            if !empty {
                b.jump(PLOOP);
                let count = villages[v].patients.len();
                for (i, &node) in villages[v].patients.clone().iter().enumerate() {
                    b.expect_pc(PLOOP);
                    // Treat the patient: data load, local bookkeeping in
                    // the (hot, L1-resident) village scratch area, result
                    // write-back, and the chase load.
                    b.load(2, Some(1), node.offset(8));
                    b.load(5, Some(6), SCRATCH.offset((v % 16) as i64 * 8));
                    b.alu(3, Some(2), Some(5));
                    b.alu(3, Some(3), Some(3));
                    b.store(Some(3), Some(1), node.offset(24));
                    b.store(Some(3), Some(6), SCRATCH.offset((v % 16) as i64 * 8));
                    b.alu(4, Some(3), None);
                    b.load(1, Some(1), node);
                    b.alu(4, Some(4), None);
                    // Rare transfer to the parent village.
                    let do_transfer =
                        villages[v].parent.is_some() && count > 4 && i > 0 && rng.chance(1, 64);
                    b.cond(Some(4), do_transfer, XFER);
                    if do_transfer {
                        b.expect_pc(XFER);
                        let parent = villages[v].parent.expect("checked");
                        b.store(Some(3), Some(1), node.offset(16));
                        b.store(Some(4), None, villages[parent].header.offset(24));
                        b.alu(5, Some(4), None);
                        b.jump(PCONT);
                        pending_transfers.push((v, i));
                    }
                    b.expect_pc(PCONT);
                    b.alu(5, Some(4), None);
                    let more = i + 1 < count;
                    b.cond(Some(6), more, PLOOP);
                }
                // Fallthrough after the last patient.
                b.jump(VEND);
            }
            b.expect_pc(VEND);
            // Village epilogue.
            b.alu(8, Some(3), None);
            b.store(Some(8), None, villages[v].header.offset(32));
            let last = v + 1 == villages.len();
            b.cond(Some(6), !last, VILLAGE);
            if last {
                // Apply the day's transfers to the model (lists mutate
                // between days, so the miss stream drifts slowly).
                pending_transfers.sort_by(|a, b| b.cmp(a));
                pending_transfers.dedup_by_key(|&mut (v, _)| v);
                for (v, i) in pending_transfers.drain(..) {
                    if i < villages[v].patients.len() {
                        let node = villages[v].patients.remove(i);
                        let parent = villages[v].parent.expect("transfers need parents");
                        villages[parent].patients.push(node);
                    }
                }
                if b.len() >= target {
                    b.jump(DAY); // halt at a day boundary
                    break 'days;
                }
                b.jump(DAY);
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{find_control_flow_violation, TraceMix};

    #[test]
    fn trace_is_control_flow_consistent() {
        let t = trace(1);
        assert_eq!(find_control_flow_violation(&t), None);
    }

    #[test]
    fn trace_is_deterministic() {
        assert_eq!(trace(1).len(), trace(1).len());
        let a = trace(1);
        let b = trace(1);
        assert_eq!(&a[..200], &b[..200]);
    }

    #[test]
    fn mix_is_pointer_heavy() {
        let t = trace(1);
        let mix = TraceMix::of(&t);
        assert!(mix.load_fraction() > 0.18, "loads {:.3}", mix.load_fraction());
        assert!(mix.load_fraction() < 0.40);
        assert!(mix.store_fraction() > 0.02);
        assert!(mix.store_fraction() < 0.20);
    }

    #[test]
    fn scale_grows_the_trace() {
        assert!(trace(2).len() > trace(1).len());
        assert!(trace(1).len() >= 300_000);
    }

    #[test]
    fn chase_loads_are_serialized() {
        // The pointer-chase load (dst r1, src r1) must be common.
        let t = trace(1);
        let chase = t
            .iter()
            .filter(|i| {
                i.op.is_load()
                    && i.dst == Some(psb_cpu::Reg::new(1))
                    && i.src1 == Some(psb_cpu::Reg::new(1))
            })
            .count();
        let loads = TraceMix::of(&t).loads;
        assert!(chase * 4 > loads, "chase loads {chase} should be a large share of {loads}");
    }

    #[test]
    fn footprint_fits_markov_deltas() {
        // All data addresses within a ~1 MB window keeps block deltas
        // inside 16 bits.
        let t = trace(1);
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for i in &t {
            if let Some(a) = i.mem_addr {
                // Heap region only (globals at 0x2000_0000 are scalars).
                if (0x1000_0000..0x1100_0000).contains(&a.raw()) {
                    lo = lo.min(a.raw());
                    hi = hi.max(a.raw());
                }
            }
        }
        assert!(hi - lo < 1024 * 1024, "span {} too wide", hi - lo);
    }
}
