//! A synthetic heap allocator for the workload models.

use psb_common::{Addr, SplitMix64};

/// A bump allocator over a virtual region, with optional address-order
/// shuffling.
///
/// Pointer-intensive programs allocate nodes roughly in creation order,
/// but traversal order diverges from address order as structures are
/// linked, rebalanced and recycled. [`SyntheticHeap::alloc_shuffled`]
/// models this: it hands out a batch of node addresses in a
/// pseudo-random permutation of the allocation order, producing the
/// irregular-but-repeatable miss deltas that a Markov predictor captures
/// and a stride predictor cannot.
///
/// Keeping each structure inside a region of a few hundred kilobytes
/// keeps block deltas within the paper's 16-bit Markov entries (Figure 4
/// shows real programs behave this way too).
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_workloads::SyntheticHeap;
///
/// let mut heap = SyntheticHeap::new(Addr::new(0x1000_0000), 42);
/// let nodes = heap.alloc_shuffled(100, 64);
/// assert_eq!(nodes.len(), 100);
/// assert!(nodes.iter().all(|a| a.raw() >= 0x1000_0000));
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticHeap {
    next: Addr,
    start: Addr,
    rng: SplitMix64,
}

impl SyntheticHeap {
    /// Creates a heap starting at `base`, with shuffling driven by `seed`.
    pub fn new(base: Addr, seed: u64) -> Self {
        SyntheticHeap { next: base, start: base, rng: SplitMix64::new(seed) }
    }

    /// Allocates one object of `size` bytes (rounded up to 16-byte
    /// alignment).
    pub fn alloc(&mut self, size: u64) -> Addr {
        let addr = self.next;
        self.next = self.next.offset(size.div_ceil(16) as i64 * 16);
        addr
    }

    /// Allocates `count` objects of `size` bytes and returns their
    /// addresses in a shuffled order — the traversal order of a linked
    /// structure built over them.
    pub fn alloc_shuffled(&mut self, count: usize, size: u64) -> Vec<Addr> {
        let mut nodes: Vec<Addr> = (0..count).map(|_| self.alloc(size)).collect();
        self.rng.shuffle(&mut nodes);
        nodes
    }

    /// Allocates `count` objects of `size` bytes in address order
    /// (array-like placement).
    pub fn alloc_array(&mut self, count: usize, size: u64) -> Vec<Addr> {
        (0..count).map(|_| self.alloc(size)).collect()
    }

    /// Total bytes handed out so far.
    pub fn footprint(&self) -> u64 {
        self.next.raw() - self.start.raw()
    }

    /// The next free address (for carving sub-regions).
    pub fn frontier(&self) -> Addr {
        self.next
    }

    /// Mutable access to the shuffle RNG (for callers that need more
    /// deterministic randomness tied to the heap's seed).
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocates_disjoint_aligned_objects() {
        let mut h = SyntheticHeap::new(Addr::new(0x1000), 1);
        let a = h.alloc(40);
        let b = h.alloc(40);
        assert_eq!(a, Addr::new(0x1000));
        assert_eq!(b, Addr::new(0x1030), "40 rounds up to 48");
        assert_eq!(h.footprint(), 96);
    }

    #[test]
    fn shuffled_is_a_permutation_of_array_order() {
        let mut h1 = SyntheticHeap::new(Addr::new(0x1000), 7);
        let mut h2 = SyntheticHeap::new(Addr::new(0x1000), 8);
        let shuffled = h1.alloc_shuffled(64, 64);
        let array = h2.alloc_array(64, 64);
        let mut sorted = shuffled.clone();
        sorted.sort();
        assert_eq!(sorted, array);
        assert_ne!(shuffled, array, "seeded shuffle must not be the identity here");
    }

    #[test]
    fn same_seed_same_layout() {
        let a = SyntheticHeap::new(Addr::new(0), 99).alloc_shuffled_copy();
        let b = SyntheticHeap::new(Addr::new(0), 99).alloc_shuffled_copy();
        assert_eq!(a, b);
    }

    impl SyntheticHeap {
        fn alloc_shuffled_copy(mut self) -> Vec<Addr> {
            self.alloc_shuffled(32, 64)
        }
    }

    #[test]
    fn footprint_tracks_frontier() {
        let mut h = SyntheticHeap::new(Addr::new(0x2000), 0);
        h.alloc_array(10, 64);
        assert_eq!(h.footprint(), 640);
        assert_eq!(h.frontier(), Addr::new(0x2000 + 640));
    }
}
