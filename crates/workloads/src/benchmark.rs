//! The benchmark suite registry (Table 1 of the paper).

use crate::{burg, deltablue, gs, health, sis, turb3d};
use psb_cpu::DynInst;
use std::fmt;
use std::str::FromStr;

/// The six programs of the paper's evaluation (Table 1), as synthetic
/// analogs — see DESIGN.md §4 and §5 for the substitution rationale.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Olden hierarchical health-care simulator (pointer chase).
    Health,
    /// BURS tree-parser generator (recursive tree walk + tables).
    Burg,
    /// Constraint-solution system (short-lived heap objects).
    DeltaBlue,
    /// Ghostscript (mixed raster stride + display-list chase).
    Gs,
    /// Circuit synthesis (stream-thrashing many-miss workload).
    Sis,
    /// Isotropic turbulence (FORTRAN, pure strides).
    Turb3d,
}

impl Benchmark {
    /// Every benchmark, in the paper's reporting order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Health,
        Benchmark::Burg,
        Benchmark::DeltaBlue,
        Benchmark::Gs,
        Benchmark::Sis,
        Benchmark::Turb3d,
    ];

    /// The five pointer-based programs (everything but `turb3d`), over
    /// which the paper reports its headline averages.
    pub const POINTER_BASED: [Benchmark; 5] =
        [Benchmark::Health, Benchmark::Burg, Benchmark::DeltaBlue, Benchmark::Gs, Benchmark::Sis];

    /// The benchmark's name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Health => "health",
            Benchmark::Burg => "burg",
            Benchmark::DeltaBlue => "deltablue",
            Benchmark::Gs => "gs",
            Benchmark::Sis => "sis",
            Benchmark::Turb3d => "turb3d",
        }
    }

    /// A one-line description (after Table 1).
    pub fn description(self) -> &'static str {
        match self {
            Benchmark::Health => {
                "hierarchical health-care system simulator (Olden); linked patient lists"
            }
            Benchmark::Burg => "fast tree-parser generator (BURS); recursive IR tree walks",
            Benchmark::DeltaBlue => "constraint solution system; short-lived heap objects",
            Benchmark::Gs => "Ghostscript PostScript interpreter; raster + display lists",
            Benchmark::Sis => "synchronous circuit synthesis; pointer arithmetic, many misses",
            Benchmark::Turb3d => "isotropic homogeneous turbulence in a cube; strided FORTRAN",
        }
    }

    /// Generates the benchmark's dynamic instruction trace. `scale`
    /// multiplies the iteration count (footprints are fixed); `scale = 1`
    /// yields ≈300k instructions.
    pub fn trace(self, scale: u32) -> Vec<DynInst> {
        match self {
            Benchmark::Health => health::trace(scale),
            Benchmark::Burg => burg::trace(scale),
            Benchmark::DeltaBlue => deltablue::trace(scale),
            Benchmark::Gs => gs::trace(scale),
            Benchmark::Sis => sis::trace(scale),
            Benchmark::Turb3d => turb3d::trace(scale),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown benchmark `{}` (expected one of health, burg, deltablue, gs, sis, turb3d)",
            self.0
        )
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::find_control_flow_violation;

    #[test]
    fn all_names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>(), Ok(b));
            assert_eq!(format!("{b}"), b.name());
            assert!(!b.description().is_empty());
        }
        assert!("nope".parse::<Benchmark>().is_err());
    }

    #[test]
    fn every_benchmark_generates_valid_traces() {
        for b in Benchmark::ALL {
            let t = b.trace(1);
            assert!(t.len() >= 300_000, "{b}: {} insts", t.len());
            assert_eq!(find_control_flow_violation(&t), None, "{b}");
        }
    }

    #[test]
    fn pointer_based_excludes_turb3d() {
        assert!(!Benchmark::POINTER_BASED.contains(&Benchmark::Turb3d));
        assert_eq!(Benchmark::POINTER_BASED.len(), 5);
    }
}
