//! `deltablue` — a constraint-solution system analog.
//!
//! The model: several constraint chains of small heap objects, walked
//! concurrently by the planner (two chains advance in lockstep, giving
//! the prefetcher multiple simultaneous streams to juggle). After every
//! planning pass a slice of one chain is destroyed and reallocated from a
//! free list — the "abundance of short lived heap objects" the paper
//! describes — so the miss stream drifts and confidence mechanisms
//! matter.
//!
//! What this preserves: the paper's biggest PSB win — high L1↔L2 demand
//! from dependent pointer chains that only a Markov predictor can follow,
//! where prefetch *prioritization* decides how much latency is hidden.

use crate::heap::SyntheticHeap;
use crate::trace::TraceBuilder;
use psb_common::{Addr, SplitMix64};
use psb_cpu::DynInst;

const PLAN: Addr = Addr::new(0x42_0000);
const PAIR: Addr = Addr::new(0x42_0040);
const TAIL: Addr = Addr::new(0x42_00c0);
const CHURN: Addr = Addr::new(0x42_0100);

const CHAINS: usize = 4;
const CHAIN_LEN: usize = 400;
const NODE_BYTES: u64 = 48;

/// Generates the `deltablue` trace. `scale` multiplies the number of
/// planner passes.
pub fn trace(scale: u32) -> Vec<DynInst> {
    let scale = scale.max(1);
    let mut heap = SyntheticHeap::new(Addr::new(0x1000_0000), 0x44_454c); // "DEL"
    let mut rng = SplitMix64::new(1995);

    let mut chains: Vec<Vec<Addr>> =
        (0..CHAINS).map(|_| heap.alloc_shuffled(CHAIN_LEN, NODE_BYTES)).collect();
    // A pool of spare nodes for the churn (recycled LIFO like a real
    // allocator's free list).
    let mut free_list: Vec<Addr> = heap.alloc_shuffled(CHAIN_LEN, NODE_BYTES);

    let target = 300_000usize * scale as usize;
    let mut b = TraceBuilder::new(PLAN);
    let mut pass = 0usize;

    loop {
        b.expect_pc(PLAN);
        b.alu(6, None, None);
        b.store(Some(6), None, Addr::new(0x2000_0100));
        b.jump(PAIR);

        // Walk chains two at a time, in lockstep: two independent
        // serialized chases are live simultaneously.
        for pair in 0..CHAINS / 2 {
            let (ca, cb) = (2 * pair, 2 * pair + 1);
            let steps = chains[ca].len().min(chains[cb].len());
            // Indexing two chains in lockstep; zipping would obscure it.
            #[allow(clippy::needless_range_loop)]
            for i in 0..steps {
                b.expect_pc(PAIR);
                let na = chains[ca][i];
                let nb = chains[cb][i];
                // Chain A step (chase register r1).
                b.load(2, Some(1), na.offset(8));
                b.load(1, Some(1), na);
                // Planner state (hot, L1-resident).
                b.load(8, Some(6), Addr::new(0x2000_0180).offset((i % 8) as i64 * 8));
                b.alu(3, Some(2), Some(8));
                // Chain B step (chase register r7).
                b.load(4, Some(7), nb.offset(8));
                b.load(7, Some(7), nb);
                b.alu(5, Some(4), Some(5));
                // Constraint evaluation: the method dispatch and strength
                // arithmetic the real solver does per edge.
                b.alu(9, Some(3), Some(5));
                b.alu(9, Some(9), None);
                b.alu(10, Some(9), Some(2));
                b.alu(9, Some(10), None);
                // Constraint satisfaction write every other node.
                let write = i % 2 == 0;
                b.cond(Some(3), write, PAIR.offset(0x34));
                if !write {
                    b.alu(8, Some(3), Some(5));
                }
                b.expect_pc(PAIR.offset(0x34));
                if write {
                    b.store(Some(3), Some(1), na.offset(16));
                } else {
                    b.alu(8, Some(8), None);
                }
                let more = i + 1 < steps;
                b.cond(Some(6), more, PAIR);
            }
            // Chain-pair epilogue.
            b.jump(TAIL);
            b.expect_pc(TAIL);
            b.alu(9, Some(3), Some(5));
            b.store(Some(9), None, Addr::new(0x2000_0140));
            let last_pair = pair + 1 == CHAINS / 2;
            b.cond(Some(6), !last_pair, PAIR);
            if last_pair {
                b.jump(CHURN);
            }
        }

        // Churn: destroy and recreate a slice of one chain.
        b.expect_pc(CHURN);
        let victim = pass % CHAINS;
        let lo = rng.below((CHAIN_LEN - 40) as u64) as usize;
        for k in 0..12usize {
            let fresh = free_list.pop().expect("free list never empties");
            let old = std::mem::replace(&mut chains[victim][lo + k], fresh);
            free_list.insert(0, old);
            // The allocator writes headers for the dying + fresh objects.
            b.store(Some(2), None, old);
            b.store(Some(3), None, fresh);
            b.alu(2, Some(2), None);
            let more = k + 1 < 12;
            b.cond(Some(2), more, CHURN);
        }
        pass += 1;
        if b.len() >= target {
            b.jump(PLAN);
            break;
        }
        b.jump(PLAN);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{find_control_flow_violation, TraceMix};
    use psb_cpu::Reg;

    #[test]
    fn trace_is_control_flow_consistent() {
        let t = trace(1);
        assert_eq!(find_control_flow_violation(&t), None);
    }

    #[test]
    fn two_concurrent_chase_streams() {
        let t = trace(1);
        let chase_a = t
            .iter()
            .filter(|i| i.op.is_load() && i.dst == Some(Reg::new(1)) && i.src1 == Some(Reg::new(1)))
            .count();
        let chase_b = t
            .iter()
            .filter(|i| i.op.is_load() && i.dst == Some(Reg::new(7)) && i.src1 == Some(Reg::new(7)))
            .count();
        assert!(chase_a > 1000);
        // Lockstep: both streams the same length.
        assert_eq!(chase_a, chase_b);
    }

    #[test]
    fn mix_matches_table_two_shape() {
        let mix = TraceMix::of(&trace(1));
        assert!(mix.load_fraction() > 0.3, "loads {:.3}", mix.load_fraction());
        assert!(mix.store_fraction() > 0.03);
        assert!(mix.store_fraction() < 0.2);
    }

    #[test]
    fn churn_changes_the_walk_between_passes() {
        // Collect the chain-A chase addresses of the first two passes;
        // they must be mostly equal but not identical (the churn).
        let t = trace(1);
        let visits: Vec<u64> = t
            .iter()
            .filter(|i| i.op.is_load() && i.dst == Some(Reg::new(1)) && i.src1 == Some(Reg::new(1)))
            .map(|i| i.mem_addr.unwrap().raw())
            .collect();
        let per_pass = (CHAINS / 2) * CHAIN_LEN; // even chains go via register r1
        assert!(visits.len() > 2 * per_pass);
        let first = &visits[..per_pass];
        let second = &visits[per_pass..2 * per_pass];
        let same = first.iter().zip(second).filter(|(a, b)| a == b).count();
        assert!(same > per_pass * 90 / 100, "mostly stable: {same}/{per_pass}");
        assert!(same < per_pass, "but not identical");
    }

    #[test]
    fn determinism() {
        let a = trace(1);
        let b = trace(1);
        assert_eq!(a.len(), b.len());
        assert_eq!(&a[..100], &b[..100]);
    }
}
