//! Compact binary serialization for instruction traces.
//!
//! Traces are deterministic, but regenerating a long one takes time and a
//! downstream user may want to archive or exchange the exact instruction
//! stream of an experiment. The format is a tight varint encoding
//! (program counters are mostly `pc + 4`, so delta coding shrinks them to
//! one byte each); a 300k-instruction trace lands around 1–2 MB.
//!
//! # Format (`PSBT` version 1)
//!
//! ```text
//! magic  "PSBT"  4 bytes
//! version u8     = 1
//! count  varint  number of instructions
//! per instruction:
//!   op+flags u8          op in low 4 bits; bits 4..7 = has_dst,
//!                        has_src1, has_src2, has_branch
//!   pc       varint      zigzag delta from previous instruction's pc
//!   dst/src1/src2 u8     only the present ones
//!   mem      (loads/stores) varint zigzag addr delta from previous
//!            mem addr, then u8 size
//!   branch   (branches) u8 kind+taken, varint zigzag target delta
//! ```
//!
//! # Example
//!
//! ```
//! use psb_workloads::{read_trace, write_trace, Benchmark};
//!
//! let trace = Benchmark::Turb3d.trace(1);
//! let mut buf = Vec::new();
//! write_trace(&mut buf, &trace).unwrap();
//! assert_eq!(read_trace(&buf[..]).unwrap(), trace);
//! ```

use psb_common::Addr;
use psb_cpu::{BranchInfo, BranchKind, DynInst, Op, Reg};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PSBT";
const VERSION: u8 = 1;

fn op_code(op: Op) -> u8 {
    match op {
        Op::IntAlu => 0,
        Op::IntMult => 1,
        Op::IntDiv => 2,
        Op::FpAdd => 3,
        Op::FpMult => 4,
        Op::FpDiv => 5,
        Op::Load => 6,
        Op::Store => 7,
        Op::Branch => 8,
    }
}

fn op_from(code: u8) -> io::Result<Op> {
    Ok(match code {
        0 => Op::IntAlu,
        1 => Op::IntMult,
        2 => Op::IntDiv,
        3 => Op::FpAdd,
        4 => Op::FpMult,
        5 => Op::FpDiv,
        6 => Op::Load,
        7 => Op::Store,
        8 => Op::Branch,
        c => return Err(bad(format!("unknown opcode {c}"))),
    })
}

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 0,
        BranchKind::Jump => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

fn kind_from(code: u8) -> io::Result<BranchKind> {
    Ok(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Jump,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Indirect,
        c => return Err(bad(format!("unknown branch kind {c}"))),
    })
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let mut byte = [0u8];
        r.read_exact(&mut byte)?;
        v |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(bad("varint too long".into()))
}

/// Serializes a trace to `w`.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace(mut w: impl Write, trace: &[DynInst]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    write_varint(&mut w, trace.len() as u64)?;
    let mut prev_pc = Addr::new(0);
    let mut prev_mem = Addr::new(0);
    for inst in trace {
        let mut head = op_code(inst.op);
        head |= (inst.dst.is_some() as u8) << 4;
        head |= (inst.src1.is_some() as u8) << 5;
        head |= (inst.src2.is_some() as u8) << 6;
        head |= (inst.branch.is_some() as u8) << 7;
        w.write_all(&[head])?;
        write_varint(&mut w, zigzag(inst.pc.delta(prev_pc)))?;
        prev_pc = inst.pc;
        for r in [inst.dst, inst.src1, inst.src2].into_iter().flatten() {
            w.write_all(&[r.0])?;
        }
        if inst.op.is_mem() {
            let addr = inst.mem_addr.ok_or_else(|| bad("memory op without address".into()))?;
            write_varint(&mut w, zigzag(addr.delta(prev_mem)))?;
            prev_mem = addr;
            w.write_all(&[inst.mem_size])?;
        }
        if let Some(b) = inst.branch {
            w.write_all(&[kind_code(b.kind) | ((b.taken as u8) << 4)])?;
            write_varint(&mut w, zigzag(b.target.delta(inst.pc)))?;
        }
    }
    Ok(())
}

/// Deserializes a trace from `r`.
///
/// # Errors
///
/// Returns `InvalidData` on a malformed stream (bad magic, version,
/// opcode or truncation) and propagates reader I/O errors.
pub fn read_trace(mut r: impl Read) -> io::Result<Vec<DynInst>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a PSBT trace".into()));
    }
    let mut version = [0u8];
    r.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(bad(format!("unsupported trace version {}", version[0])));
    }
    let count = read_varint(&mut r)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 24));
    let mut prev_pc = Addr::new(0);
    let mut prev_mem = Addr::new(0);
    for _ in 0..count {
        let mut head = [0u8];
        r.read_exact(&mut head)?;
        let op = op_from(head[0] & 0x0f)?;
        let pc = prev_pc.offset(unzigzag(read_varint(&mut r)?));
        prev_pc = pc;
        let mut reg = |present: bool| -> io::Result<Option<Reg>> {
            if !present {
                return Ok(None);
            }
            let mut b = [0u8];
            r.read_exact(&mut b)?;
            if (b[0] as usize) >= Reg::COUNT {
                return Err(bad(format!("register {} out of range", b[0])));
            }
            Ok(Some(Reg::new(b[0])))
        };
        let dst = reg(head[0] & 0x10 != 0)?;
        let src1 = reg(head[0] & 0x20 != 0)?;
        let src2 = reg(head[0] & 0x40 != 0)?;
        let (mem_addr, mem_size) = if op.is_mem() {
            let addr = prev_mem.offset(unzigzag(read_varint(&mut r)?));
            prev_mem = addr;
            let mut size = [0u8];
            r.read_exact(&mut size)?;
            (Some(addr), size[0])
        } else {
            (None, 0)
        };
        let branch = if head[0] & 0x80 != 0 {
            let mut kb = [0u8];
            r.read_exact(&mut kb)?;
            let kind = kind_from(kb[0] & 0x0f)?;
            let taken = kb[0] & 0x10 != 0;
            let target = pc.offset(unzigzag(read_varint(&mut r)?));
            Some(BranchInfo { kind, taken, target })
        } else {
            None
        };
        out.push(DynInst { pc, op, dst, src1, src2, mem_addr, mem_size, branch });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn round_trips_every_benchmark() {
        for b in [Benchmark::Health, Benchmark::Sis] {
            let trace = b.trace(1);
            let mut buf = Vec::new();
            write_trace(&mut buf, &trace).unwrap();
            let back = read_trace(&buf[..]).unwrap();
            assert_eq!(back, trace, "{b}");
            // Compact: well under 8 bytes per instruction.
            assert!(
                buf.len() < trace.len() * 8,
                "{b}: {} bytes for {} insts",
                buf.len(),
                trace.len()
            );
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\x01\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_version() {
        let err = read_trace(&b"PSBT\x09\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation() {
        let trace = Benchmark::Turb3d.trace(1);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace[..100]).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut &buf[..]).unwrap(), v);
        }
    }
}
