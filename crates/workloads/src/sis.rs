//! `sis` — a synchronous circuit-synthesis analog: the stream-thrashing
//! stress case.
//!
//! The model sweeps a large netlist whose inner loops behave like heavily
//! software-pipelined/unrolled code: sixteen distinct load sites (reached
//! through an indirect dispatch) each walk their *own* region of a 4 MB
//! node pool with a perfectly consistent stride — sixteen individually
//! predictable streams competing for eight stream buffers. The paper
//! calls out exactly this shape: "tight inner loops which are highly
//! software pipelined ... increases the number of load instructions ...
//! which can degrade the performance of stream buffers."
//!
//! Under two-miss filtering every site's misses qualify, so allocations
//! continually evict each other's buffers before their 4-entry windows
//! produce hits (stream thrashing: wasted prefetches, bus blow-up).
//! Confidence allocation lets the buffers that *do* earn hits saturate
//! their priority counters and survive: eight sites get covered well and
//! the rest are simply rejected. A pointer chain adds a Markov-only
//! stream on top.

use crate::heap::SyntheticHeap;
use crate::trace::TraceBuilder;
use psb_common::{Addr, SplitMix64};
use psb_cpu::DynInst;

const SWEEP: Addr = Addr::new(0x44_0000);
const GLOOP: Addr = Addr::new(0x44_0040);
const GNEXT: Addr = Addr::new(0x44_0900);
const PROD: Addr = Addr::new(0x44_0a00);
const CHAIN: Addr = Addr::new(0x44_0a40);
const JUNK_BASE: Addr = Addr::new(0x44_0100);

const JUNK_SITES: u64 = 16;
const GATES: usize = 600;
// 4 MB total (16 x 256 KB per-site regions): four times the L2, so the
// pool never fits and thrashed prefetches are pure waste.
const POOL_BYTES: u64 = 4 * 1024 * 1024;
const SITE_REGION: u64 = POOL_BYTES / JUNK_SITES;
const CHAIN_NODES: usize = 1200;

fn junk_site(g: u64) -> Addr {
    JUNK_BASE.offset((g % JUNK_SITES) as i64 * 0x40)
}

/// Generates the `sis` trace. `scale` multiplies the number of netlist
/// sweeps.
pub fn trace(scale: u32) -> Vec<DynInst> {
    let scale = scale.max(1);
    let mut heap = SyntheticHeap::new(Addr::new(0x1000_0000), 0x53_4953); // "SIS"

    let pool = heap.alloc(POOL_BYTES);
    let gate_table = heap.alloc((GATES as u64) * 8);
    let chain = heap.alloc_shuffled(CHAIN_NODES, 64);

    let target = 300_000usize * scale as usize;
    let mut b = TraceBuilder::new(SWEEP);
    let mut chain_pos = 0usize;
    // Each site's walking position, step counter, and jump RNG.
    let mut site_pos = vec![0u64; JUNK_SITES as usize];
    let mut site_step = vec![0u64; JUNK_SITES as usize];
    let mut rng: Vec<SplitMix64> = (0..JUNK_SITES).map(|g| SplitMix64::new(0x515 + g)).collect();

    loop {
        b.expect_pc(SWEEP);
        b.alu(6, None, None);
        b.alu(8, Some(6), None);
        b.store(Some(8), None, Addr::new(0x2000_0300));
        b.jump(GLOOP);

        for gate in 0..GATES {
            b.expect_pc(GLOOP);
            b.alu(6, Some(6), None);
            b.load(2, Some(6), gate_table.offset(gate as i64 * 8));
            b.alu(9, Some(2), None);
            let site = junk_site(gate as u64);
            b.indirect(Some(9), site);

            // Gate evaluation: six iterations of this site's inner loop.
            // One static load PC walks the site's private region,
            // dependence-chained (each iteration's index comes from the
            // previous load). Sites differ in how long their strided runs
            // last before the walk jumps to another part of the region:
            // even sites jump every 2 blocks (essentially unpredictable —
            // low confidence), odd sites every 5 (predictable enough to
            // pass the two-miss filter, but every allocation's stream
            // runs off the end of the run into garbage).
            let g = gate as u64 % JUNK_SITES;
            let run_len = if g.is_multiple_of(2) { 2 } else { 5 };
            for k in 0..6u64 {
                b.expect_pc(site);
                let gi = g as usize;
                if site_step[gi].is_multiple_of(run_len) {
                    site_pos[gi] = rng[gi].below(SITE_REGION / 32 - 8) * 32;
                }
                site_step[gi] += 1;
                let pos = pool.offset((g * SITE_REGION + site_pos[gi]) as i64);
                site_pos[gi] += 32;
                b.load(3, Some(9), pos);
                b.alu(4, Some(3), Some(4));
                b.alu(9, Some(4), None);
                b.store(Some(9), None, Addr::new(0x2000_0800).offset((gate % 64) as i64 * 8));
                b.cond(Some(9), k < 5, site);
            }
            b.jump(GNEXT);

            b.expect_pc(GNEXT);
            b.alu(7, Some(9), None);
            let do_prod = gate % 16 == 15;
            b.cond(Some(7), do_prod, PROD);
            if do_prod {
                b.expect_pc(PROD);
                // A touch of bookkeeping before the chain walk.
                b.load(2, Some(7), gate_table.offset((gate % 64) as i64 * 8));
                b.alu(7, Some(2), Some(7));
                b.cond(Some(7), false, PROD);
                // Productive chain walk: 20 nodes, annotating each.
                b.jump(CHAIN);
                for k in 0..20usize {
                    b.expect_pc(CHAIN);
                    let node = chain[(chain_pos + k) % CHAIN_NODES];
                    b.load(2, Some(1), node.offset(8));
                    b.load(1, Some(1), node);
                    b.alu(3, Some(2), Some(3));
                    b.store(Some(3), None, node.offset(16));
                    b.cond(Some(3), k + 1 < 20, CHAIN);
                }
                chain_pos = (chain_pos + 20) % CHAIN_NODES;
                // Rejoin the gate loop at the "more gates?" branch.
                b.jump(GNEXT.offset(0x8));
            }
            b.expect_pc(GNEXT.offset(0x8));
            b.cond(Some(6), gate + 1 < GATES, GLOOP);
        }
        if b.len() >= target {
            b.jump(SWEEP);
            break;
        }
        b.jump(SWEEP);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{find_control_flow_violation, TraceMix};
    use psb_cpu::BranchKind;

    #[test]
    fn trace_is_control_flow_consistent() {
        let t = trace(1);
        assert_eq!(find_control_flow_violation(&t), None);
    }

    #[test]
    fn junk_sites_do_short_runs() {
        let t = trace(1);
        // The first junk site's first load: stride-32 pairs within a run,
        // random jumps between runs.
        let site0: Vec<u64> = t
            .iter()
            .filter(|i| i.op.is_load() && i.pc.raw() >= JUNK_BASE.raw() && i.pc.raw() < GNEXT.raw())
            .map(|i| i.mem_addr.unwrap().raw())
            .take(300)
            .collect();
        let short_strides = site0.windows(2).filter(|w| w[1].wrapping_sub(w[0]) == 32).count();
        // Each 3-load run contributes 2 stride-32 pairs out of 3 deltas.
        assert!(short_strides * 3 > site0.len(), "{short_strides}/{}", site0.len());
        let jumps = site0
            .windows(2)
            .filter(|w| w[1].wrapping_sub(w[0]) != 32 && w[0].wrapping_sub(w[1]) != 32)
            .count();
        assert!(jumps * 4 > site0.len(), "random restarts must be common");
    }

    #[test]
    fn indirect_dispatch_is_present() {
        let t = trace(1);
        let ind = t
            .iter()
            .filter(|i| matches!(i.branch, Some(bi) if bi.kind == BranchKind::Indirect))
            .count();
        assert!(ind >= GATES, "one dispatch per gate, got {ind}");
    }

    #[test]
    fn productive_chain_repeats() {
        let t = trace(2);
        let chase: Vec<u64> = t
            .iter()
            .filter(|i| i.op.is_load() && i.pc == CHAIN.offset(4))
            .map(|i| i.mem_addr.unwrap().raw())
            .collect();
        assert!(chase.len() > CHAIN_NODES, "chain must wrap: {}", chase.len());
        // After wrapping, the sequence repeats.
        assert_eq!(chase[0], chase[CHAIN_NODES]);
    }

    #[test]
    fn mix_is_load_dominated() {
        let mix = TraceMix::of(&trace(1));
        assert!(mix.load_fraction() > 0.2, "loads {:.3}", mix.load_fraction());
    }

    #[test]
    fn determinism() {
        let a = trace(1);
        let b = trace(1);
        assert_eq!(a.len(), b.len());
        assert_eq!(&a[..100], &b[..100]);
    }
}
