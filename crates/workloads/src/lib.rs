//! Synthetic benchmark trace generators for the PSB reproduction.
//!
//! The paper evaluates on six Alpha binaries (Table 1): `health`, `burg`,
//! `deltablue`, `gs`, `sis` and `turb3d`. Running those binaries requires
//! DEC compilers and SimpleScalar's functional Alpha engine, so this crate
//! substitutes *models*: each generator executes a simplified version of
//! the program's data structures (a real simulated heap, real pointer
//! links, real branch outcomes) and emits the correct-path dynamic
//! instruction stream with true register dependences.
//!
//! What is preserved — and what the paper's experiments actually measure —
//! is the *L1 miss address stream* of each program class:
//!
//! * repeatable pointer chases (health, burg, deltablue) that only a
//!   Markov predictor can follow,
//! * mixed stride + pointer behaviour (gs),
//! * allocation-thrashing miss floods (sis), and
//! * pure strides (turb3d).
//!
//! See `DESIGN.md` §4–5 for the substitution argument.
//!
//! # Example
//!
//! ```
//! use psb_workloads::Benchmark;
//!
//! let trace = Benchmark::Health.trace(1);
//! assert!(trace.len() >= 300_000);
//! // Traces are deterministic: same call, same instructions.
//! assert_eq!(trace[0], Benchmark::Health.trace(1)[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
mod burg;
mod cache;
mod deltablue;
mod gs;
mod health;
mod heap;
mod serial;
mod sis;
mod trace;
mod turb3d;

pub use benchmark::{Benchmark, ParseBenchmarkError};
pub use cache::{clear_trace_cache, trace_cache_len, SharedTrace};
pub use heap::SyntheticHeap;
pub use serial::{read_trace, write_trace};
pub use trace::{find_control_flow_violation, TraceBuilder, TraceMix};
