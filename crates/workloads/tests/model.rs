//! Model-checked tests for the trace cache's synchronization.
//!
//! This file only compiles under `--cfg psb_model` (run it through
//! `cargo xtask model`); in normal builds it is an empty test crate.
//!
//! The production cache (`Benchmark::shared_trace` /
//! `clear_trace_cache`) is a thin wrapper over
//! `psb_model::keyed::KeyedOnce<(Benchmark, u32), SharedTrace>`, so
//! these tests explore that exact type with cheap generators standing
//! in for trace generation — the synchronization being checked is the
//! synchronization production runs, without paying for a 300k-entry
//! trace in every one of thousands of explored interleavings.

#![cfg(psb_model)]

use psb_model::keyed::KeyedOnce;
use psb_model::sched::{explore, ModelConfig};
use psb_model::sync::atomic::{AtomicUsize, Ordering};
use psb_model::thread;
use std::sync::Arc;

fn cfg(max_dfs: usize, random: usize) -> ModelConfig {
    ModelConfig { max_dfs, random, ..ModelConfig::default() }.from_env()
}

/// Mirror of the cache's key/value shape: `(benchmark, scale)` to a
/// shared immutable payload.
type Cache = KeyedOnce<(u8, u32), Arc<Vec<u32>>>;

/// Racing `shared_trace` callers for one `(benchmark, scale)` key:
/// the generator runs exactly once and everyone shares its value —
/// under every explored interleaving.
#[test]
fn racing_shared_trace_callers_generate_once() {
    explore("trace_cache_once", &cfg(4000, 400), || {
        let cache: Arc<Cache> = Arc::new(KeyedOnce::new());
        let gens = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..2 {
                let cache = cache.clone();
                let gens = gens.clone();
                handles.push(s.spawn(move || {
                    cache.get_or_init((1, 2), || {
                        gens.fetch_add(1, Ordering::SeqCst);
                        Arc::new(vec![10, 20, 30])
                    })
                }));
            }
            let traces: Vec<Arc<Vec<u32>>> =
                handles.into_iter().map(|h| h.join().expect("no panic")).collect();
            assert!(
                Arc::ptr_eq(&traces[0], &traces[1]),
                "racing callers must share one generation"
            );
            assert_eq!(*traces[0], vec![10, 20, 30]);
        });
        assert_eq!(gens.load(Ordering::SeqCst), 1, "the generator must run exactly once");
        assert_eq!(cache.initialized_len(), 1);
    });
}

/// Distinct keys generate independently and never serialize on each
/// other's cell (two scales of one benchmark, as a sweep would race).
#[test]
fn distinct_scales_generate_independently() {
    explore("trace_cache_two_keys", &cfg(3000, 300), || {
        let cache: Arc<Cache> = Arc::new(KeyedOnce::new());
        thread::scope(|s| {
            for scale in 1..=2u32 {
                let cache = cache.clone();
                s.spawn(move || {
                    let t = cache.get_or_init((1, scale), || Arc::new(vec![scale; 3]));
                    assert_eq!(*t, vec![scale; 3]);
                });
            }
        });
        assert_eq!(cache.initialized_len(), 2);
    });
}

/// `clear_trace_cache` racing `shared_trace`: under every interleaving
/// the lookup returns a complete value (won the race on the pre-clear
/// cell, or regenerated post-clear), nothing deadlocks, and the cache
/// stays usable afterwards.
#[test]
fn clear_racing_lookup_never_tears_or_wedges() {
    explore("trace_cache_clear_race", &cfg(4000, 400), || {
        let cache: Arc<Cache> = Arc::new(KeyedOnce::new());
        let gens = Arc::new(AtomicUsize::new(0));
        let got = thread::scope(|s| {
            let looker = {
                let cache = cache.clone();
                let gens = gens.clone();
                s.spawn(move || {
                    cache.get_or_init((3, 1), || {
                        gens.fetch_add(1, Ordering::SeqCst);
                        Arc::new(vec![7, 8, 9])
                    })
                })
            };
            {
                let cache = cache.clone();
                s.spawn(move || cache.clear());
            }
            looker.join().expect("lookup must not panic")
        });
        // The hand-out is complete whether or not its cell survived.
        assert_eq!(*got, vec![7, 8, 9], "clear must never tear a hand-out");
        let runs = gens.load(Ordering::SeqCst);
        assert!(runs >= 1 && runs <= 2, "generator runs once, or twice across a clear");
        // The cache still works after the dust settles.
        let again = cache.get_or_init((3, 1), || Arc::new(vec![7, 8, 9]));
        assert_eq!(*again, vec![7, 8, 9]);
        assert_eq!(cache.initialized_len(), 1);
    });
}
