//! Model-checked tests for the psb-model scheduler and shims.
//!
//! This file only compiles under `--cfg psb_model` (run it through
//! `cargo xtask model`); in normal builds it is an empty test crate.

#![cfg(psb_model)]

use psb_model::keyed::KeyedOnce;
use psb_model::sched::{explore, replay, try_explore, ModelConfig, EXPECTED_PANIC_MARKER};
use psb_model::sync::atomic::{AtomicUsize, Ordering};
use psb_model::sync::{mpsc, Mutex, OnceLock};
use psb_model::thread;
use std::sync::Arc;

fn small() -> ModelConfig {
    ModelConfig { max_dfs: 2000, random: 200, ..ModelConfig::default() }.from_env()
}

/// The canonical seeded bug: a non-atomic read-modify-write. Two
/// threads each load the counter and store back `+1`; under at least
/// one interleaving an increment is lost. The checker must find it and
/// the printed schedule must reproduce it deterministically.
#[test]
fn detects_lost_update_and_replays_it() {
    fn racy_body() {
        let n = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..2 {
                let n = n.clone();
                s.spawn(move || {
                    let seen = n.load(Ordering::SeqCst);
                    n.store(seen + 1, Ordering::SeqCst);
                });
            }
        });
        let total = n.load(Ordering::SeqCst);
        assert!(total == 2, "{EXPECTED_PANIC_MARKER} lost update: counter is {total}, not 2");
    }

    let violation =
        try_explore(&small(), racy_body).expect_err("the lost-update bug must be found");
    assert!(
        violation.message.contains("lost update"),
        "unexpected violation: {}",
        violation.message
    );
    assert_ne!(violation.schedule, "-", "a race needs at least one branching decision");

    // The schedule string must reproduce the same failure, twice.
    for _ in 0..2 {
        let again = replay(&violation.schedule, racy_body)
            .expect_err("replaying the failing schedule must fail again");
        assert!(again.message.contains("lost update"), "replay diverged: {}", again.message);
    }
}

/// The same shape with an atomic `fetch_add` has no lost update: the
/// exploration must complete without a violation.
#[test]
fn fetch_add_has_no_lost_update() {
    let report = explore("fetch_add", &small(), || {
        let n = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..2 {
                let n = n.clone();
                s.spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(report.executions > 1, "two racing threads imply multiple interleavings");
}

/// Classic AB-BA lock ordering: the checker must drive the two threads
/// into the deadlocked interleaving and report it.
#[test]
fn detects_ab_ba_deadlock() {
    let violation = try_explore(&small(), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        thread::scope(|s| {
            {
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    let _ga = a.lock().unwrap();
                    let _gb = b.lock().unwrap();
                });
            }
            {
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    let _gb = b.lock().unwrap();
                    let _ga = a.lock().unwrap();
                });
            }
        });
    })
    .expect_err("the AB-BA deadlock must be found");
    assert!(violation.message.contains("deadlock"), "got: {}", violation.message);
}

/// Mutual exclusion actually holds: a mutex-protected read-modify-write
/// never loses updates, across every explored interleaving.
#[test]
fn mutex_serializes_critical_sections() {
    explore("mutex_rmw", &small(), || {
        let n = Arc::new(Mutex::new(0usize));
        thread::scope(|s| {
            for _ in 0..2 {
                let n = n.clone();
                s.spawn(move || {
                    let mut g = n.lock().unwrap();
                    *g += 1;
                });
            }
        });
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

/// OnceLock initializes exactly once no matter how callers race, and
/// every caller observes the winner's value.
#[test]
fn oncelock_initializes_exactly_once() {
    explore("oncelock_once", &small(), || {
        let cell = Arc::new(OnceLock::new());
        let inits = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for t in 0..2usize {
                let cell = cell.clone();
                let inits = inits.clone();
                s.spawn(move || {
                    let v = *cell.get_or_init(|| {
                        inits.fetch_add(1, Ordering::SeqCst);
                        t
                    });
                    assert!(v < 2);
                });
            }
        });
        assert_eq!(inits.load(Ordering::SeqCst), 1, "initializer must run exactly once");
        assert!(cell.get().is_some());
    });
}

/// Channel semantics: per-sender FIFO order is preserved, nothing is
/// lost or duplicated, and the receiver terminates once all senders
/// hang up.
#[test]
fn channel_preserves_per_sender_fifo() {
    explore("channel_fifo", &small(), || {
        let (tx, rx) = mpsc::channel::<usize>();
        thread::scope(|s| {
            for t in 0..2usize {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..2 {
                        tx.send(t * 10 + i).expect("receiver alive");
                    }
                });
            }
            drop(tx);
            let got: Vec<usize> = rx.into_iter().collect();
            assert_eq!(got.len(), 4, "all sends arrive exactly once");
            for t in 0..2 {
                let mine: Vec<usize> = got.iter().copied().filter(|v| v / 10 == t).collect();
                assert_eq!(mine, vec![t * 10, t * 10 + 1], "per-sender order holds");
            }
        });
    });
}

/// KeyedOnce under racing callers of the same key: one generation, a
/// shared value — the property the workloads trace cache relies on.
#[test]
fn keyed_once_single_key_generates_once() {
    explore("keyed_once_race", &small(), || {
        let m: Arc<KeyedOnce<u32, Arc<u32>>> = Arc::new(KeyedOnce::new());
        let gens = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..2 {
                let m = m.clone();
                let gens = gens.clone();
                handles.push(s.spawn(move || {
                    m.get_or_init(7, || {
                        gens.fetch_add(1, Ordering::SeqCst);
                        Arc::new(70)
                    })
                }));
            }
            let values: Vec<Arc<u32>> =
                handles.into_iter().map(|h| h.join().expect("no panic")).collect();
            assert!(Arc::ptr_eq(&values[0], &values[1]), "racers share one value");
        });
        assert_eq!(gens.load(Ordering::SeqCst), 1, "generator ran exactly once");
        assert_eq!(m.initialized_len(), 1);
    });
}

/// A panic on a model thread is reported as a violation with a
/// schedule, not swallowed and not a hang.
#[test]
fn thread_panic_is_a_violation() {
    let violation = try_explore(&small(), || {
        thread::scope(|s| {
            s.spawn(|| {
                panic!("{EXPECTED_PANIC_MARKER} deliberate child panic");
            });
        });
    })
    .expect_err("the child panic must surface as a violation");
    assert!(violation.message.contains("deliberate child panic"), "got: {}", violation.message);
}
