//! Keyed exactly-once initialization: a map of lazily generated,
//! shareable values where racing initializers for the *same* key block
//! on one generation while *different* keys generate concurrently.
//!
//! This is the synchronization pattern behind the workloads trace cache
//! (`Benchmark::shared_trace`): the map lock is only held to look up or
//! insert a per-key cell, never while the (potentially expensive)
//! generator runs. Because the implementation is written against the
//! [`crate::sync`] shims, `cargo xtask model` explores its
//! interleavings directly — the code being model-checked is the code
//! production runs.
//!
//! The backing store is an insertion-ordered vector, not a `HashMap`:
//! key counts are small (a handful of benchmark/scale pairs), the
//! linear probe is cheaper than hashing at that size, iteration order
//! is deterministic, and `new` stays `const` so a `KeyedOnce` can back
//! a process-wide `static` directly.

use crate::sync::{Mutex, MutexGuard, OnceLock};
use std::sync::Arc;

type Slot<K, V> = (K, Arc<OnceLock<V>>);

/// A concurrent map from `K` to a value generated exactly once per key.
///
/// Values are handed out by clone; in practice `V` is an `Arc<...>` so
/// a clone is a refcount bump and clearing the map never invalidates
/// values already handed out.
#[derive(Debug)]
pub struct KeyedOnce<K, V> {
    map: Mutex<Vec<Slot<K, V>>>,
}

impl<K: Eq + Clone, V: Clone> KeyedOnce<K, V> {
    /// Creates an empty map. `const`, so a `KeyedOnce` can back a
    /// process-wide `static` directly.
    pub const fn new() -> KeyedOnce<K, V> {
        KeyedOnce { map: Mutex::new(Vec::new()) }
    }

    /// The map lock. A generator panic cannot poison the map (generation
    /// happens outside the lock), so a poisoned guard still holds a
    /// consistent map and is safe to use.
    fn lock(&self) -> MutexGuard<'_, Vec<Slot<K, V>>> {
        match self.map.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the value for `key`, running `init` to generate it if no
    /// racing caller has. Racing callers for one key block on the key's
    /// cell (one generates, the rest wait); callers for different keys
    /// generate concurrently because the map lock is released before
    /// `init` runs.
    ///
    /// If `init` panics the cell is left uninitialized and the next
    /// caller retries, matching `std::sync::OnceLock` semantics.
    pub fn get_or_init(&self, key: K, init: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self.lock();
            match map.iter().find(|(k, _)| *k == key) {
                Some((_, cell)) => cell.clone(),
                None => {
                    let cell: Arc<OnceLock<V>> = Arc::new(OnceLock::new());
                    map.push((key, cell.clone()));
                    cell
                }
            }
        };
        cell.get_or_init(init).clone()
    }

    /// Number of keys whose value has finished generating (diagnostics
    /// and tests; keys with an in-flight generation are not counted).
    pub fn initialized_len(&self) -> usize {
        self.lock().iter().filter(|(_, c)| c.get().is_some()).count()
    }

    /// Drops every cached entry. Values handed out earlier stay alive
    /// through their own clones (for `V = Arc<...>`, their own
    /// refcount); generations in flight complete against their
    /// now-orphaned cell and later lookups regenerate.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

impl<K: Eq + Clone, V: Clone> Default for KeyedOnce<K, V> {
    fn default() -> KeyedOnce<K, V> {
        KeyedOnce::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_once_and_shares() {
        let m: KeyedOnce<u32, Arc<u32>> = KeyedOnce::new();
        let a = m.get_or_init(7, || Arc::new(70));
        let b = m.get_or_init(7, || unreachable!("second init for a cached key"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(m.initialized_len(), 1);
    }

    #[test]
    fn clear_preserves_live_values_and_regenerates() {
        let m: KeyedOnce<u32, Arc<u32>> = KeyedOnce::new();
        let a = m.get_or_init(1, || Arc::new(10));
        m.clear();
        assert_eq!(m.initialized_len(), 0);
        assert_eq!(*a, 10, "clear must not invalidate live hand-outs");
        let b = m.get_or_init(1, || Arc::new(10));
        assert!(!Arc::ptr_eq(&a, &b), "post-clear lookups regenerate");
    }

    #[test]
    fn panicking_init_leaves_key_retryable() {
        let m: KeyedOnce<u32, u32> = KeyedOnce::new();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.get_or_init(3, || panic!("generator failed"))
        }));
        assert!(boom.is_err());
        assert_eq!(m.initialized_len(), 0);
        assert_eq!(m.get_or_init(3, || 33), 33);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let m: KeyedOnce<(u8, u32), u64> = KeyedOnce::new();
        assert_eq!(m.get_or_init((0, 1), || 1), 1);
        assert_eq!(m.get_or_init((0, 2), || 2), 2);
        assert_eq!(m.get_or_init((1, 1), || 3), 3);
        assert_eq!(m.initialized_len(), 3);
    }

    #[test]
    fn works_as_a_static() {
        static S: KeyedOnce<u8, u8> = KeyedOnce::new();
        assert_eq!(S.get_or_init(1, || 11), 11);
        assert_eq!(S.get_or_init(1, || unreachable!()), 11);
        S.clear();
    }
}
