//! Thread spawn/join/scope: `std::thread` re-exports in normal builds,
//! scheduler-controlled threads under `--cfg psb_model`.
//!
//! Modeled threads are real OS threads, but only one runs at a time:
//! every synchronization point hands a baton to the thread the current
//! schedule names next. Spawning is itself a scheduling point, so the
//! checker explores "child runs immediately" as well as "parent races
//! ahead" interleavings.

#[cfg(not(psb_model))]
pub use std::thread::{available_parallelism, scope, spawn, JoinHandle, Scope, ScopedJoinHandle};

#[cfg(psb_model)]
pub use crate::sched::thread_impl::{
    available_parallelism, scope, spawn, JoinHandle, Scope, ScopedJoinHandle,
};
