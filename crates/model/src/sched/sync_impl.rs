//! Modeled synchronization primitives (`--cfg psb_model` builds only).
//!
//! Each type keeps its *data* inline in an `UnsafeCell` and its
//! *scheduling state* (ownership, queue length, waiters) in the
//! execution's [`Controller`](super::Controller). The `UnsafeCell`
//! accesses are sound because the controller's baton guarantees at most
//! one model thread executes between scheduling points — data races are
//! converted into explicitly explored interleavings.

use super::{current_ctx, Blocker, Ctx, OnceState, RegCell, Resource};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{RecvError, SendError};
use std::sync::{Arc, LockResult, PoisonError};

/// A scheduling point at the start of a shim operation; returns the
/// calling thread's context.
fn point() -> Ctx {
    let ctx = current_ctx();
    ctx.ctl.sched_point(ctx.tid);
    ctx
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Modeled `std::sync::Mutex`: acquisition is a scheduling point,
/// contention parks the thread in the scheduler, and a panic while
/// holding the guard poisons the lock exactly like std.
pub struct Mutex<T: ?Sized> {
    reg: RegCell,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler baton serializes every access to `data`; the
// bounds mirror std's.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a mutex holding `t`.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex { reg: RegCell::new(), data: UnsafeCell::new(t) }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn res_id(&self, ctx: &Ctx, st: &mut super::SchedState) -> usize {
        self.reg.id(ctx.ctl.epoch, st, || Resource::Mutex { owner: None, poisoned: false })
    }

    /// Acquires the mutex, blocking (in model time) until it is free.
    /// Returns `Err(PoisonError)` carrying the guard when a previous
    /// owner panicked, matching std.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = point();
        loop {
            let acquired = ctx.ctl.with_state(|st| {
                let id = self.res_id(&ctx, st);
                match st.resource_mut(id) {
                    Resource::Mutex { owner, poisoned } => {
                        if owner.is_none() {
                            *owner = Some(ctx.tid);
                            Some(*poisoned)
                        } else {
                            None
                        }
                    }
                    _ => unreachable!("mutex registered as a non-mutex resource"),
                }
            });
            match acquired {
                Some(poisoned) => {
                    let guard = MutexGuard { lock: self, ctx: ctx.clone() };
                    return if poisoned { Err(PoisonError::new(guard)) } else { Ok(guard) };
                }
                None => {
                    let id = ctx.ctl.with_state(|st| self.res_id(&ctx, st));
                    ctx.ctl.block_on(ctx.tid, Blocker::Mutex(id));
                }
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// Guard for a locked [`Mutex`]; releasing (dropping) wakes contenders
/// and poisons the lock when dropped during a panic.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    ctx: Ctx,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this thread owns the lock and holds the baton.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as for `deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let panicking = std::thread::panicking();
        // Quiet state access: this runs on unwind paths where raising
        // the abort sentinel again would double-panic.
        self.ctx.ctl.with_state_quiet(|st| {
            let id = self.lock.res_id(&self.ctx, st);
            if let Resource::Mutex { owner, poisoned } = st.resource_mut(id) {
                *owner = None;
                if panicking {
                    *poisoned = true;
                }
            }
            st.wake_where(Blocker::Mutex(id));
        });
    }
}

// ---------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------

/// Modeled `std::sync::OnceLock` (the `get` / `get_or_init` subset the
/// workspace uses). Racing initializers are serialized: one runs, the
/// rest park until it finishes; a panicking initializer resets the cell
/// so the next caller retries, matching std.
pub struct OnceLock<T> {
    reg: RegCell,
    value: UnsafeCell<Option<T>>,
}

// SAFETY: baton-serialized access; bounds mirror std's OnceLock.
unsafe impl<T: Send> Send for OnceLock<T> {}
unsafe impl<T: Send + Sync> Sync for OnceLock<T> {}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    pub const fn new() -> OnceLock<T> {
        OnceLock { reg: RegCell::new(), value: UnsafeCell::new(None) }
    }

    fn res_id(&self, ctx: &Ctx, st: &mut super::SchedState) -> usize {
        self.reg.id(ctx.ctl.epoch, st, || {
            // A static cell can outlive an execution: re-register with
            // the state its data actually holds.
            // SAFETY: caller holds the baton (state lock held).
            let ready = unsafe { (*self.value.get()).is_some() };
            Resource::Once { state: if ready { OnceState::Ready } else { OnceState::Empty } }
        })
    }

    /// The value, if initialization has completed (an in-flight
    /// initializer counts as "not yet").
    pub fn get(&self) -> Option<&T> {
        let ctx = point();
        let ready = ctx.ctl.with_state(|st| {
            let id = self.res_id(&ctx, st);
            matches!(st.resource_mut(id), Resource::Once { state: OnceState::Ready })
        });
        if ready {
            // SAFETY: Ready means the value is set and never mutated
            // again (only `explore` teardown drops it).
            unsafe { (*self.value.get()).as_ref() }
        } else {
            None
        }
    }

    /// Returns the value, running `f` to initialize it if no other
    /// thread has (or is about to — racing callers park until the
    /// winner finishes).
    pub fn get_or_init(&self, f: impl FnOnce() -> T) -> &T {
        let ctx = current_ctx();
        enum Act {
            Ret,
            Init,
            Wait(usize),
        }
        let id = loop {
            ctx.ctl.sched_point(ctx.tid);
            let act = ctx.ctl.with_state(|st| {
                let id = self.res_id(&ctx, st);
                match st.resource_mut(id) {
                    Resource::Once { state } => match state {
                        OnceState::Ready => Act::Ret,
                        OnceState::Empty => {
                            *state = OnceState::Busy;
                            Act::Init
                        }
                        OnceState::Busy => Act::Wait(id),
                    },
                    _ => unreachable!("oncelock registered as a non-once resource"),
                }
            });
            match act {
                // SAFETY: as for `get`.
                Act::Ret => {
                    return unsafe { (*self.value.get()).as_ref() }
                        .expect("invariant: Ready implies a stored value")
                }
                Act::Wait(id) => ctx.ctl.block_on(ctx.tid, Blocker::Once(id)),
                Act::Init => {
                    let id = ctx.ctl.with_state(|st| self.res_id(&ctx, st));
                    break id;
                }
            }
        };
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => {
                // SAFETY: Busy state means this thread owns the slot.
                unsafe { *self.value.get() = Some(v) };
                ctx.ctl.with_state_quiet(|st| {
                    if let Resource::Once { state } = st.resource_mut(id) {
                        *state = OnceState::Ready;
                    }
                    st.wake_where(Blocker::Once(id));
                });
                // SAFETY: as for `get`.
                unsafe { (*self.value.get()).as_ref() }.expect("invariant: value was just stored")
            }
            Err(p) => {
                // Reset so the next caller retries (std semantics);
                // quiet because `p` may be the abort sentinel.
                ctx.ctl.with_state_quiet(|st| {
                    if let Resource::Once { state } = st.resource_mut(id) {
                        *state = OnceState::Empty;
                    }
                    st.wake_where(Blocker::Once(id));
                });
                resume_unwind(p)
            }
        }
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> OnceLock<T> {
        OnceLock::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnceLock").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

/// Modeled `AtomicUsize`: every access is a scheduling point. The
/// passed `Ordering` is accepted for signature compatibility but the
/// model executes sequentially-consistently.
#[derive(Debug, Default)]
pub struct AtomicUsize {
    inner: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    /// Creates a new atomic holding `v`.
    pub const fn new(v: usize) -> AtomicUsize {
        AtomicUsize { inner: std::sync::atomic::AtomicUsize::new(v) }
    }

    /// Loads the value (scheduling point).
    pub fn load(&self, _order: std::sync::atomic::Ordering) -> usize {
        point();
        self.inner.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Stores `v` (scheduling point).
    pub fn store(&self, v: usize, _order: std::sync::atomic::Ordering) {
        point();
        self.inner.store(v, std::sync::atomic::Ordering::SeqCst);
    }

    /// Adds `v`, returning the previous value (scheduling point).
    pub fn fetch_add(&self, v: usize, _order: std::sync::atomic::Ordering) -> usize {
        point();
        self.inner.fetch_add(v, std::sync::atomic::Ordering::SeqCst)
    }
}

/// Modeled `AtomicBool`; see [`AtomicUsize`] for the ordering caveat.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic holding `v`.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool { inner: std::sync::atomic::AtomicBool::new(v) }
    }

    /// Loads the value (scheduling point).
    pub fn load(&self, _order: std::sync::atomic::Ordering) -> bool {
        point();
        self.inner.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Stores `v` (scheduling point).
    pub fn store(&self, v: bool, _order: std::sync::atomic::Ordering) {
        point();
        self.inner.store(v, std::sync::atomic::Ordering::SeqCst);
    }

    /// Swaps in `v`, returning the previous value (scheduling point).
    pub fn swap(&self, v: bool, _order: std::sync::atomic::Ordering) -> bool {
        point();
        self.inner.swap(v, std::sync::atomic::Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------
// mpsc channel
// ---------------------------------------------------------------------

struct Chan<T> {
    reg: RegCell,
    q: UnsafeCell<VecDeque<T>>,
}

// SAFETY: baton-serialized access to `q`; endpoint liveness is tracked
// in the controller under its lock.
unsafe impl<T: Send> Send for Chan<T> {}
unsafe impl<T: Send> Sync for Chan<T> {}

impl<T> Chan<T> {
    fn res_id(&self, ctx: &Ctx, st: &mut super::SchedState) -> usize {
        self.reg.id(ctx.ctl.epoch, st, || {
            // Channels are created inside an execution, so this runs in
            // the creating epoch with one sender and a live receiver.
            Resource::Chan { len: 0, senders: 1, recv_alive: true }
        })
    }
}

/// Creates a modeled mpsc channel; the unbounded-queue, asynchronous
/// analogue of `std::sync::mpsc::channel`.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let ctx = current_ctx();
    let chan = Arc::new(Chan { reg: RegCell::new(), q: UnsafeCell::new(VecDeque::new()) });
    // Register eagerly so the initial sender/receiver counts are
    // recorded before any clone or drop needs them.
    ctx.ctl.with_state(|st| {
        chan.res_id(&ctx, st);
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Sending half of a modeled channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Queues `v` (scheduling point); `Err(SendError)` when the
    /// receiver is gone, matching std.
    pub fn send(&self, v: T) -> Result<(), SendError<T>> {
        let ctx = point();
        let alive = ctx.ctl.with_state(|st| {
            let id = self.chan.res_id(&ctx, st);
            match st.resource_mut(id) {
                Resource::Chan { recv_alive, .. } => *recv_alive,
                _ => unreachable!("channel registered as a non-channel resource"),
            }
        });
        if !alive {
            return Err(SendError(v));
        }
        // SAFETY: baton held between scheduling points.
        unsafe { (*self.chan.q.get()).push_back(v) };
        ctx.ctl.with_state(|st| {
            let id = self.chan.res_id(&ctx, st);
            if let Resource::Chan { len, .. } = st.resource_mut(id) {
                *len += 1;
            }
            st.wake_where(Blocker::Recv(id));
        });
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        let ctx = current_ctx();
        ctx.ctl.with_state_quiet(|st| {
            let id = self.chan.res_id(&ctx, st);
            if let Resource::Chan { senders, .. } = st.resource_mut(id) {
                *senders += 1;
            }
        });
        Sender { chan: self.chan.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let ctx = current_ctx();
        ctx.ctl.with_state_quiet(|st| {
            let id = self.chan.res_id(&ctx, st);
            let disconnected = match st.resource_mut(id) {
                Resource::Chan { senders, .. } => {
                    *senders -= 1;
                    *senders == 0
                }
                _ => false,
            };
            if disconnected {
                // A receiver parked on an empty queue must observe the
                // disconnect and return Err(RecvError).
                st.wake_where(Blocker::Recv(id));
            }
        });
    }
}

/// Receiving half of a modeled channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Pops the next message, parking (in model time) while the queue
    /// is empty; `Err(RecvError)` once every sender is gone and the
    /// queue is drained, matching std.
    pub fn recv(&self) -> Result<T, RecvError> {
        let ctx = current_ctx();
        enum Act {
            Pop,
            Disconnected,
            Park(usize),
        }
        loop {
            ctx.ctl.sched_point(ctx.tid);
            let act = ctx.ctl.with_state(|st| {
                let id = self.chan.res_id(&ctx, st);
                match st.resource_mut(id) {
                    Resource::Chan { len, senders, .. } => {
                        if *len > 0 {
                            *len -= 1;
                            Act::Pop
                        } else if *senders == 0 {
                            Act::Disconnected
                        } else {
                            Act::Park(id)
                        }
                    }
                    _ => unreachable!("channel registered as a non-channel resource"),
                }
            });
            match act {
                Act::Pop => {
                    // SAFETY: baton held between scheduling points.
                    let v = unsafe { (*self.chan.q.get()).pop_front() };
                    return Ok(v.expect("invariant: len > 0 implies a queued message"));
                }
                Act::Disconnected => return Err(RecvError),
                Act::Park(id) => ctx.ctl.block_on(ctx.tid, Blocker::Recv(id)),
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let ctx = current_ctx();
        ctx.ctl.with_state_quiet(|st| {
            let id = self.chan.res_id(&ctx, st);
            if let Resource::Chan { recv_alive, .. } = st.resource_mut(id) {
                *recv_alive = false;
            }
        });
    }
}

/// Owning iterator over received messages; ends when every sender is
/// dropped.
pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;

    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}
