//! Modeled threads (`--cfg psb_model` builds only): spawn, join and
//! scoped spawn, mirroring the `std::thread` subset the workspace uses.
//!
//! Model threads are real OS threads under the controller's baton.
//! Spawning registers the child as runnable and is itself a scheduling
//! point, so "child runs before the parent's next step" is explored.
//! Scoped threads are OS-joined by a drop guard before the borrowed
//! frame can die — on panic/abort unwinds too — which is what makes the
//! `'scope` lifetime transmute in [`Scope::spawn`] sound.

use super::{current_ctx, run_model_thread, Blocker, Controller};
use std::any::Any;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex as OsMutex, PoisonError};

/// Deterministic stand-in for `std::thread::available_parallelism`:
/// model executions always see two hardware threads, so thread-count
/// heuristics behave identically on every host.
pub fn available_parallelism() -> std::io::Result<NonZeroUsize> {
    Ok(NonZeroUsize::new(2).expect("2 is nonzero"))
}

/// Parks the calling model thread until `tid` finishes.
fn model_join(tid: usize) {
    let ctx = current_ctx();
    loop {
        ctx.ctl.sched_point(ctx.tid);
        if ctx.ctl.is_done(tid) {
            return;
        }
        ctx.ctl.block_on(ctx.tid, Blocker::Join(tid));
    }
}

fn take_result<T>(tid: usize, cell: &OsMutex<Option<T>>) -> std::thread::Result<T> {
    match cell.lock().unwrap_or_else(PoisonError::into_inner).take() {
        Some(v) => Ok(v),
        // A missing result means the thread panicked. The payload
        // already reached the controller, which reports the panic as a
        // model violation; this Err is only observed transiently while
        // the execution tears down.
        None => Err(Box::new(format!("model thread {tid} panicked")) as Box<dyn Any + Send>),
    }
}

/// Handle to a detached model thread, analogous to
/// `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    tid: usize,
    cell: Arc<OsMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits (in model time) for the thread to finish and returns its
    /// result.
    pub fn join(self) -> std::thread::Result<T> {
        model_join(self.tid);
        take_result(self.tid, &self.cell)
    }
}

/// Spawns a detached model thread, analogous to `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = current_ctx();
    let tid = ctx.ctl.register_thread();
    let cell: Arc<OsMutex<Option<T>>> = Arc::new(OsMutex::new(None));
    let out = cell.clone();
    let ctl = ctx.ctl.clone();
    let h = std::thread::Builder::new()
        .name(format!("psb-model-{tid}"))
        .spawn(move || {
            run_model_thread(ctl, tid, move || {
                let v = f();
                *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            })
        })
        .expect("spawning a model thread");
    ctx.ctl.set_os_handle(tid, h);
    // The child is runnable from here on: let the scheduler consider it.
    ctx.ctl.sched_point(ctx.tid);
    JoinHandle { tid, cell }
}

/// Scope for spawning threads that borrow from the caller's frame,
/// analogous to `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    ctl: Arc<Controller>,
    /// Children not yet explicitly joined; the scope end joins them.
    pending: RefCell<Vec<usize>>,
    /// OS handles for every child; the drop guard joins them before the
    /// borrowed frame dies.
    os: RefCell<Vec<std::thread::JoinHandle<()>>>,
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    env_marker: PhantomData<&'env mut &'env ()>,
}

/// Handle to a scoped model thread, analogous to
/// `std::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    tid: usize,
    cell: Arc<OsMutex<Option<T>>>,
    pending: &'scope RefCell<Vec<usize>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits (in model time) for the thread to finish and returns its
    /// result.
    pub fn join(self) -> std::thread::Result<T> {
        self.pending.borrow_mut().retain(|&t| t != self.tid);
        model_join(self.tid);
        take_result(self.tid, &self.cell)
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that may borrow non-`'static` data from the
    /// enclosing frame, analogous to `std::thread::Scope::spawn`.
    pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let ctx = current_ctx();
        let tid = self.ctl.register_thread();
        let cell: Arc<OsMutex<Option<T>>> = Arc::new(OsMutex::new(None));
        let out = cell.clone();
        let body: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let v = f();
            *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
        });
        // SAFETY: the closure (and everything it borrows) outlives the
        // child thread because ScopeGuard OS-joins every child before
        // `scope` returns or unwinds — the same contract that makes
        // std::thread::scope sound.
        let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
        let ctl = self.ctl.clone();
        let h = std::thread::Builder::new()
            .name(format!("psb-model-{tid}"))
            .spawn(move || run_model_thread(ctl, tid, body))
            .expect("spawning a scoped model thread");
        self.os.borrow_mut().push(h);
        self.pending.borrow_mut().push(tid);
        // The child is runnable from here on.
        ctx.ctl.sched_point(ctx.tid);
        ScopedJoinHandle { tid, cell, pending: &self.pending }
    }
}

/// OS-joins every scoped child when the scope frame dies, normally or
/// by unwind. On unwind it first forces an execution abort so children
/// parked on the scheduler wake, raise the abort sentinel and exit —
/// otherwise the OS-level join below would wait on a thread that never
/// gets the baton again.
struct ScopeGuard<'a> {
    ctl: Arc<Controller>,
    os: &'a RefCell<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.ctl.force_abort();
        }
        for h in self.os.borrow_mut().drain(..) {
            let _ = h.join();
        }
    }
}

/// Creates a scope for spawning borrowing threads, analogous to
/// `std::thread::scope`: every spawned child is joined (in model time
/// and at the OS level) before this returns.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    let ctx = current_ctx();
    let sc = Scope {
        ctl: ctx.ctl.clone(),
        pending: RefCell::new(Vec::new()),
        os: RefCell::new(Vec::new()),
        scope_marker: PhantomData,
        env_marker: PhantomData,
    };
    let guard = ScopeGuard { ctl: ctx.ctl.clone(), os: &sc.os };
    let out = f(&sc);
    // Normal exit: children the body did not join explicitly are joined
    // here, in model time, so their effects are complete.
    let pending: Vec<usize> = std::mem::take(&mut *sc.pending.borrow_mut());
    for tid in pending {
        model_join(tid);
    }
    drop(guard);
    out
}
