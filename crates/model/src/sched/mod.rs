//! The controlled scheduler behind `--cfg psb_model`.
//!
//! # How an exploration works
//!
//! [`explore`] runs a test body many times. Each run ("execution")
//! spawns the body on a fresh **model thread**; model threads are real
//! OS threads, but a baton in the [`Controller`] ensures exactly one
//! runs at a time. Every shim operation (atomic access, mutex
//! acquire/release, channel send/receive, `OnceLock` transition, spawn,
//! join) is a **scheduling point**: the running thread consults the
//! controller, which picks who runs next.
//!
//! Whenever more than one thread could run, the choice is a **decision**
//! recorded in the execution's schedule. The explorer enumerates
//! schedules two ways:
//!
//! * **DFS** over the decision tree, bounded by a preemption budget
//!   (switching away from a thread that could have continued costs one
//!   preemption; budget-exhausted states may only continue the current
//!   thread). This systematically covers every few-preemption
//!   interleaving — the regime where real concurrency bugs live.
//! * **Random walk**: seeded SplitMix64 choices under a looser
//!   preemption budget, sampling schedules the DFS bound excludes.
//!
//! # Violations
//!
//! A panic escaping any model thread, a state where every live thread
//! is blocked (deadlock / lost wakeup), or an execution exceeding its
//! operation budget (livelock) aborts the exploration and reports a
//! [`Violation`] carrying a **schedule string** — the dot-separated
//! decision sequence. [`replay`] (or `PSB_MODEL_REPLAY=<schedule>`)
//! re-runs the body pinned to that schedule, reproducing the failure
//! deterministically.

/// Modeled `Mutex`/`OnceLock`/atomics/mpsc implementations.
pub mod sync_impl;
/// Modeled spawn/join and scoped threads.
pub mod thread_impl;

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as OsAtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex as OsMutex, MutexGuard as OsMutexGuard, Once};

/// A panic payload with this marker substring is treated as *expected*
/// by the installed panic hook and not printed: model tests that
/// deliberately panic thousands of times (one per explored
/// interleaving) use it to keep output readable.
pub const EXPECTED_PANIC_MARKER: &str = "[model-expected]";

pub(crate) type Payload = Box<dyn Any + Send + 'static>;

/// Sentinel unwound through model threads when an exploration aborts
/// (a violation was found on some thread, or the execution is being
/// torn down). Raised via `resume_unwind`, so it never hits the panic
/// hook.
pub(crate) struct ModelAbort;

pub(crate) fn raise_abort() -> ! {
    resume_unwind(Box::new(ModelAbort))
}

// ---------------------------------------------------------------------
// Configuration, reports, violations
// ---------------------------------------------------------------------

/// Exploration budgets and seeds. `Default` matches the CHESS-style
/// setup: exhaustive DFS under 2 preemptions, then a seeded random
/// walk under 8.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Preemption budget for the DFS phase.
    pub preemption_bound: u32,
    /// Preemption budget for the random-walk phase.
    pub random_preemption_bound: u32,
    /// Maximum DFS executions before the walk is cut off (the DFS may
    /// also complete — exhaust its bounded space — earlier).
    pub max_dfs: usize,
    /// Number of random-walk executions after the DFS phase.
    pub random: usize,
    /// Seed for the random walk (execution i uses `seed + i`).
    pub seed: u64,
    /// Per-execution operation budget; exceeding it is reported as a
    /// livelock violation.
    pub max_ops: u64,
}

impl Default for ModelConfig {
    fn default() -> ModelConfig {
        ModelConfig {
            preemption_bound: 2,
            random_preemption_bound: 8,
            max_dfs: 4096,
            random: 512,
            seed: 0x9E37_79B9_7F4A_7C15,
            max_ops: 50_000,
        }
    }
}

impl ModelConfig {
    /// Applies `PSB_MODEL_PREEMPTIONS` / `PSB_MODEL_DFS` /
    /// `PSB_MODEL_RANDOM` / `PSB_MODEL_SEED` environment overrides, so
    /// CI can widen or narrow every suite's budget in one place.
    pub fn from_env(mut self) -> ModelConfig {
        fn env<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        }
        if let Some(v) = env("PSB_MODEL_PREEMPTIONS") {
            self.preemption_bound = v;
        }
        if let Some(v) = env("PSB_MODEL_DFS") {
            self.max_dfs = v;
        }
        if let Some(v) = env("PSB_MODEL_RANDOM") {
            self.random = v;
        }
        if let Some(v) = env("PSB_MODEL_SEED") {
            self.seed = v;
        }
        self
    }
}

/// Summary of a completed (violation-free) exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Total executions (interleavings) explored.
    pub executions: usize,
    /// Executions explored by the DFS phase.
    pub dfs_executions: usize,
    /// Executions explored by the random-walk phase.
    pub random_executions: usize,
    /// True when the DFS exhausted its bounded schedule space (rather
    /// than hitting `max_dfs`).
    pub complete: bool,
}

/// A failing interleaving: what went wrong and the schedule string that
/// reproduces it under [`replay`].
#[derive(Clone, Debug)]
pub struct Violation {
    /// Human-readable description of the failure.
    pub message: String,
    /// Dot-separated decision sequence (`"-"` when the failure needs no
    /// branching decisions). Feed to [`replay`] or `PSB_MODEL_REPLAY`.
    pub schedule: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}\n  replayable schedule: {}\n  reproduce: PSB_MODEL_REPLAY={} cargo xtask model",
            self.message, self.schedule, self.schedule
        )
    }
}

// ---------------------------------------------------------------------
// Deterministic RNG (random-walk phase)
// ---------------------------------------------------------------------

/// SplitMix64: tiny, seedable, good enough to diversify schedules.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------
// Controller state
// ---------------------------------------------------------------------

/// Why a thread is parked.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Blocker {
    /// Waiting to acquire a mutex.
    Mutex(usize),
    /// Waiting for a `OnceLock` initialization to finish.
    Once(usize),
    /// Waiting for a channel to become non-empty (or disconnected).
    Recv(usize),
    /// Waiting for a thread to finish.
    Join(usize),
}

impl std::fmt::Display for Blocker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Blocker::Mutex(id) => write!(f, "mutex#{id}"),
            Blocker::Once(id) => write!(f, "oncelock#{id}"),
            Blocker::Recv(id) => write!(f, "recv#{id}"),
            Blocker::Join(t) => write!(f, "join(thread {t})"),
        }
    }
}

#[derive(Copy, Clone, Debug)]
enum Status {
    Runnable,
    Blocked(Blocker),
    Done,
}

/// `OnceLock` lifecycle as the scheduler sees it.
#[derive(Copy, Clone, Debug)]
pub(crate) enum OnceState {
    /// No value, nobody initializing.
    Empty,
    /// A thread is running the initializer.
    Busy,
    /// Value present.
    Ready,
}

/// Scheduler-side metadata for one shim object. The object's *data*
/// stays in the object (an `UnsafeCell` only the baton holder touches);
/// the controller tracks just what blocking and waking need.
#[derive(Debug)]
pub(crate) enum Resource {
    /// Mutex ownership.
    Mutex {
        /// Owning thread, if locked.
        owner: Option<usize>,
        /// A previous owner panicked while holding the lock.
        poisoned: bool,
    },
    /// `OnceLock` initialization state.
    Once {
        /// Current lifecycle state.
        state: OnceState,
    },
    /// mpsc channel occupancy and endpoint liveness.
    Chan {
        /// Messages queued.
        len: usize,
        /// Live `Sender` clones.
        senders: usize,
        /// Receiver still alive.
        recv_alive: bool,
    },
}

/// One branching decision: the threads that could have run and which
/// was chosen (an index into `candidates`).
#[derive(Clone, Debug)]
struct Decision {
    candidates: Vec<usize>,
    chosen: usize,
}

struct FailureRec {
    message: String,
}

pub(crate) struct SchedState {
    threads: Vec<Status>,
    os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
    resources: Vec<Resource>,
    current: usize,
    abort: bool,
    failure: Option<FailureRec>,
    prefix: Vec<usize>,
    schedule: Vec<usize>,
    decisions: Vec<Decision>,
    preemptions: u32,
    bound: u32,
    rng: Option<SplitMix64>,
    ops: u64,
    max_ops: u64,
}

impl SchedState {
    /// Registers a new scheduler-side resource, returning its id.
    pub(crate) fn register_resource(&mut self, r: Resource) -> usize {
        self.resources.push(r);
        self.resources.len() - 1
    }

    /// The resource with id `id`.
    pub(crate) fn resource_mut(&mut self, id: usize) -> &mut Resource {
        &mut self.resources[id]
    }

    /// Marks every thread parked on `blocker` runnable again. Woken
    /// threads re-check their wait condition once scheduled, so waking
    /// more threads than can make progress is safe.
    pub(crate) fn wake_where(&mut self, blocker: Blocker) {
        for s in &mut self.threads {
            if matches!(s, Status::Blocked(b) if *b == blocker) {
                *s = Status::Runnable;
            }
        }
    }

    fn record_failure(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(FailureRec { message });
        }
        self.abort = true;
    }

    fn render_schedule(&self) -> String {
        if self.schedule.is_empty() {
            "-".to_string()
        } else {
            self.schedule.iter().map(usize::to_string).collect::<Vec<_>>().join(".")
        }
    }
}

fn payload_str(p: &Payload) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------
// The controller
// ---------------------------------------------------------------------

/// Per-execution scheduler: owns thread statuses, resource metadata and
/// the schedule being replayed/recorded, and passes the run baton.
pub(crate) struct Controller {
    /// Execution number, global across the process; lets shim objects
    /// (including statics that outlive one execution) detect stale
    /// resource registrations.
    pub(crate) epoch: usize,
    state: OsMutex<SchedState>,
    cv: Condvar,
}

static EPOCH: OsAtomicUsize = OsAtomicUsize::new(1);

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current model thread's identity: its controller and thread id.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) ctl: Arc<Controller>,
    pub(crate) tid: usize,
}

/// The calling thread's model context.
///
/// # Panics
///
/// Panics when called outside an active exploration: a `psb_model`
/// build routes shim operations here, and using them without a running
/// [`explore`] is a test-harness bug worth failing loudly on.
pub(crate) fn current_ctx() -> Ctx {
    CTX.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        panic!(
            "psb-model shim used outside an exploration \
             (this build has --cfg psb_model; wrap the test body in psb_model::sched::explore)"
        )
    })
}

impl Controller {
    fn new(
        epoch: usize,
        bound: u32,
        max_ops: u64,
        prefix: Vec<usize>,
        rng: Option<SplitMix64>,
    ) -> Controller {
        Controller {
            epoch,
            state: OsMutex::new(SchedState {
                threads: Vec::new(),
                os_handles: Vec::new(),
                resources: Vec::new(),
                current: 0,
                abort: false,
                failure: None,
                prefix,
                schedule: Vec::new(),
                decisions: Vec::new(),
                preemptions: 0,
                bound,
                rng,
                ops: 0,
                max_ops,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> OsMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f` under the state lock. Raises the abort sentinel first
    /// when the execution is tearing down.
    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut SchedState) -> R) -> R {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            raise_abort();
        }
        f(&mut st)
    }

    /// [`Controller::with_state`] without the abort check — for unwind
    /// paths (guard drops) where raising again would double-panic.
    pub(crate) fn with_state_quiet<R>(&self, f: impl FnOnce(&mut SchedState) -> R) -> R {
        f(&mut self.lock())
    }

    /// Picks the next thread to run. Call with the lock held whenever
    /// the current thread stops running or reaches a decision point.
    fn choose_next(&self, st: &mut SchedState) {
        let cur = st.current;
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if !st.threads.iter().all(|s| matches!(s, Status::Done)) {
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Status::Blocked(b) => Some(format!("thread {i} blocked on {b}")),
                        _ => None,
                    })
                    .collect();
                st.record_failure(format!("deadlock: no runnable thread ({})", stuck.join(", ")));
            }
            self.cv.notify_all();
            return;
        }

        let cur_runnable = runnable.contains(&cur);
        let mut allowed = if cur_runnable {
            let mut v = vec![cur];
            v.extend(runnable.iter().copied().filter(|&t| t != cur));
            if st.preemptions >= st.bound {
                // Budget spent: the running thread must continue.
                v.truncate(1);
            }
            v
        } else {
            runnable
        };

        let choice = if allowed.len() == 1 {
            allowed[0]
        } else if st.schedule.len() < st.prefix.len() {
            let want = st.prefix[st.schedule.len()];
            // A diverging replay (schedule from a different body) falls
            // back to the first candidate rather than wedging.
            if allowed.contains(&want) {
                want
            } else {
                allowed[0]
            }
        } else if let Some(rng) = &mut st.rng {
            allowed[(rng.next() % allowed.len() as u64) as usize]
        } else {
            allowed[0]
        };

        if allowed.len() > 1 {
            let chosen = allowed
                .iter()
                .position(|&t| t == choice)
                .expect("invariant: choice is drawn from `allowed`");
            st.decisions.push(Decision { candidates: std::mem::take(&mut allowed), chosen });
            st.schedule.push(choice);
        }
        if cur_runnable && choice != cur {
            st.preemptions += 1;
        }
        st.current = choice;
        self.cv.notify_all();
    }

    fn wait_for_baton(&self, mut st: OsMutexGuard<'_, SchedState>, tid: usize) {
        loop {
            if st.abort {
                drop(st);
                raise_abort();
            }
            if st.current == tid && matches!(st.threads[tid], Status::Runnable) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn charge_op(&self, st: &mut SchedState) {
        st.ops += 1;
        if st.ops > st.max_ops && !st.abort {
            let max = st.max_ops;
            st.record_failure(format!(
                "operation budget exceeded ({max} scheduling points in one execution) — livelock?"
            ));
            self.cv.notify_all();
        }
    }

    /// A scheduling point: lets the scheduler hand the baton to any
    /// runnable thread, then waits until this thread is picked again.
    pub(crate) fn sched_point(&self, tid: usize) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            raise_abort();
        }
        self.charge_op(&mut st);
        if st.abort {
            drop(st);
            raise_abort();
        }
        self.choose_next(&mut st);
        self.wait_for_baton(st, tid);
    }

    /// Parks this thread on `blocker` and schedules someone else. On
    /// return the thread has been woken *and* re-scheduled; callers
    /// re-check their wait condition and may block again.
    pub(crate) fn block_on(&self, tid: usize, blocker: Blocker) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            raise_abort();
        }
        self.charge_op(&mut st);
        if st.abort {
            drop(st);
            raise_abort();
        }
        st.threads[tid] = Status::Blocked(blocker);
        self.choose_next(&mut st);
        self.wait_for_baton(st, tid);
    }

    /// Registers a new model thread (runnable, no OS handle yet).
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Status::Runnable);
        st.os_handles.push(None);
        st.threads.len() - 1
    }

    pub(crate) fn set_os_handle(&self, tid: usize, h: std::thread::JoinHandle<()>) {
        self.lock().os_handles[tid] = Some(h);
    }

    /// True when `tid` has finished.
    pub(crate) fn is_done(&self, tid: usize) -> bool {
        matches!(self.lock().threads[tid], Status::Done)
    }

    /// Marks `tid` finished, wakes its joiners and passes the baton.
    /// A non-sentinel panic payload becomes a violation.
    pub(crate) fn finish_thread(&self, tid: usize, panic: Option<Payload>) {
        let mut st = self.lock();
        st.threads[tid] = Status::Done;
        st.wake_where(Blocker::Join(tid));
        if let Some(p) = panic {
            if !p.is::<ModelAbort>() {
                let msg = format!("thread {tid} panicked: {}", payload_str(&p));
                st.record_failure(msg);
            }
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.choose_next(&mut st);
    }

    /// Aborts the execution without recording a failure: teardown paths
    /// (scope guards unwinding a real panic) use this to get parked
    /// threads to wake, raise the abort sentinel and exit.
    pub(crate) fn force_abort(&self) {
        let mut st = self.lock();
        st.abort = true;
        self.cv.notify_all();
    }

    /// Main-thread side: waits for every model thread to finish, then
    /// joins the OS threads.
    fn wait_all_done(&self) {
        let mut st = self.lock();
        while !st.threads.iter().all(|s| matches!(s, Status::Done)) {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let handles: Vec<_> = st.os_handles.iter_mut().filter_map(Option::take).collect();
        drop(st);
        for h in handles {
            // The payload already reached finish_thread; the OS-level
            // result is always the unit wrapper.
            let _ = h.join();
        }
    }
}

/// Registration cell embedded in every shim object: maps the object to
/// its per-execution controller resource, re-registering lazily when a
/// new execution (epoch) starts. Statics that survive across
/// executions re-register with state derived from their actual data.
pub(crate) struct RegCell {
    epoch: OsAtomicUsize,
    id: OsAtomicUsize,
}

impl RegCell {
    pub(crate) const fn new() -> RegCell {
        RegCell { epoch: OsAtomicUsize::new(0), id: OsAtomicUsize::new(0) }
    }

    /// The object's resource id in `ctx`'s execution, registering via
    /// `make` on first use per epoch. Call with the state lock held.
    pub(crate) fn id(
        &self,
        epoch: usize,
        st: &mut SchedState,
        make: impl FnOnce() -> Resource,
    ) -> usize {
        if self.epoch.load(SeqCst) == epoch {
            return self.id.load(SeqCst);
        }
        let id = st.register_resource(make());
        self.id.store(id, SeqCst);
        self.epoch.store(epoch, SeqCst);
        id
    }
}

// ---------------------------------------------------------------------
// Running executions and exploring
// ---------------------------------------------------------------------

/// Wraps a model thread body: sets the context, waits for the first
/// baton, runs, reports the outcome.
pub(crate) fn run_model_thread(ctl: Arc<Controller>, tid: usize, f: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { ctl: ctl.clone(), tid }));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        // First baton: the thread is registered runnable but only runs
        // once the schedule picks it.
        let st = ctl.lock();
        ctl.wait_for_baton(st, tid);
        f()
    }));
    ctl.finish_thread(tid, outcome.err());
    CTX.with(|c| *c.borrow_mut() = None);
}

struct ExecOut {
    schedule: Vec<usize>,
    decisions: Vec<Decision>,
    violation: Option<Violation>,
}

fn run_once(
    bound: u32,
    max_ops: u64,
    prefix: Vec<usize>,
    rng: Option<SplitMix64>,
    body: Arc<dyn Fn() + Send + Sync>,
) -> ExecOut {
    let epoch = EPOCH.fetch_add(1, SeqCst);
    let ctl = Arc::new(Controller::new(epoch, bound, max_ops, prefix, rng));
    let root = ctl.register_thread();
    debug_assert_eq!(root, 0);
    let ctl2 = ctl.clone();
    let h = std::thread::Builder::new()
        .name("psb-model-0".to_string())
        .spawn(move || run_model_thread(ctl2.clone(), 0, move || body()))
        .expect("spawning the root model thread");
    ctl.set_os_handle(0, h);
    ctl.wait_all_done();

    let st = ctl.lock();
    ExecOut {
        schedule: st.schedule.clone(),
        decisions: st.decisions.clone(),
        violation: st
            .failure
            .as_ref()
            .map(|f| Violation { message: f.message.clone(), schedule: st.render_schedule() }),
    }
}

/// The deepest not-yet-exhausted decision's next alternative, as a new
/// replay prefix; `None` when the bounded schedule space is exhausted.
fn next_prefix(schedule: &[usize], decisions: &[Decision]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        if d.chosen + 1 < d.candidates.len() {
            let mut p = schedule[..i].to_vec();
            p.push(d.candidates[d.chosen + 1]);
            return Some(p);
        }
    }
    None
}

fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains(EXPECTED_PANIC_MARKER))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains(EXPECTED_PANIC_MARKER))
                })
                .unwrap_or(false);
            if !expected {
                prev(info);
            }
        }));
    });
}

fn parse_schedule(s: &str) -> Result<Vec<usize>, Violation> {
    let s = s.trim();
    if s.is_empty() || s == "-" {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|tok| {
            tok.parse::<usize>().map_err(|_| Violation {
                message: format!("unparseable schedule token `{tok}`"),
                schedule: s.to_string(),
            })
        })
        .collect()
}

/// Explores interleavings of `body` and returns the exploration
/// [`Report`], or the first [`Violation`] found.
///
/// When `PSB_MODEL_REPLAY` is set in the environment, runs exactly that
/// schedule once instead of exploring.
pub fn try_explore<F>(cfg: &ModelConfig, body: F) -> Result<Report, Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);

    if let Ok(replay_schedule) = std::env::var("PSB_MODEL_REPLAY") {
        let prefix = parse_schedule(&replay_schedule)?;
        let out = run_once(cfg.random_preemption_bound, cfg.max_ops, prefix, None, body);
        return match out.violation {
            Some(v) => Err(v),
            None => Ok(Report {
                executions: 1,
                dfs_executions: 1,
                random_executions: 0,
                complete: false,
            }),
        };
    }

    let mut dfs_executions = 0;
    let mut complete = false;
    let mut prefix = Vec::new();
    loop {
        let out = run_once(cfg.preemption_bound, cfg.max_ops, prefix.clone(), None, body.clone());
        dfs_executions += 1;
        if let Some(v) = out.violation {
            return Err(v);
        }
        match next_prefix(&out.schedule, &out.decisions) {
            Some(p) => prefix = p,
            None => {
                complete = true;
                break;
            }
        }
        if dfs_executions >= cfg.max_dfs {
            break;
        }
    }

    let mut random_executions = 0;
    for i in 0..cfg.random {
        let rng = SplitMix64::new(cfg.seed.wrapping_add(i as u64));
        let out =
            run_once(cfg.random_preemption_bound, cfg.max_ops, Vec::new(), Some(rng), body.clone());
        random_executions += 1;
        if let Some(v) = out.violation {
            return Err(v);
        }
    }

    Ok(Report {
        executions: dfs_executions + random_executions,
        dfs_executions,
        random_executions,
        complete,
    })
}

/// [`try_explore`], panicking with the formatted [`Violation`] (schedule
/// string and replay instructions included) on failure. `name` labels
/// the exploration in the panic message.
pub fn explore<F>(name: &str, cfg: &ModelConfig, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match try_explore(cfg, body) {
        Ok(report) => report,
        Err(v) => panic!("model[{name}] violation: {v}"),
    }
}

/// Re-runs `body` pinned to `schedule` (a [`Violation::schedule`]
/// string). Returns the violation it reproduces, or `Ok(())` when the
/// schedule passes — e.g. after the bug it demonstrated is fixed.
pub fn replay<F>(schedule: &str, body: F) -> Result<(), Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let prefix = parse_schedule(schedule)?;
    let cfg = ModelConfig::default();
    let out = run_once(cfg.random_preemption_bound, cfg.max_ops, prefix, None, Arc::new(body));
    match out.violation {
        Some(v) => Err(v),
        None => Ok(()),
    }
}
