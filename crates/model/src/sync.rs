//! Synchronization primitives: `std::sync` re-exports in normal builds,
//! model-checked shims under `--cfg psb_model`.
//!
//! The module mirrors the `std::sync` paths used by the workspace so
//! that swapping `use std::sync::X` for `use psb_model::sync::X` is the
//! whole migration:
//!
//! * [`Mutex`] / [`MutexGuard`] (poisoning included)
//! * [`OnceLock`]
//! * [`atomic`] — `AtomicBool`, `AtomicUsize`, `Ordering`
//! * [`mpsc`] — `channel`, `Sender`, `Receiver` and their error types
//!
//! `Arc` is deliberately **not** shimmed: reference counting is not a
//! scheduling-visible synchronization point for the properties this
//! checker verifies (orderings, exactly-once initialization, deadlock
//! freedom), so modeled code keeps using `std::sync::Arc`.

#[cfg(not(psb_model))]
pub use std::sync::{Mutex, MutexGuard, OnceLock};

#[cfg(psb_model)]
pub use crate::sched::sync_impl::{Mutex, MutexGuard, OnceLock};

/// Atomic types routed through the model scheduler under `psb_model`.
pub mod atomic {
    #[cfg(not(psb_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicUsize};

    #[cfg(psb_model)]
    pub use crate::sched::sync_impl::{AtomicBool, AtomicUsize};

    // Orderings are accepted and recorded but the model executes every
    // atomic access sequentially-consistently: the checker explores
    // interleavings, not weak-memory reorderings.
    pub use std::sync::atomic::Ordering;
}

/// Multi-producer single-consumer channels.
pub mod mpsc {
    #[cfg(not(psb_model))]
    pub use std::sync::mpsc::{channel, IntoIter, Receiver, Sender};

    #[cfg(psb_model)]
    pub use crate::sched::sync_impl::{channel, IntoIter, Receiver, Sender};

    // The error types are shared with std in both modes, so match arms
    // and `?` conversions written against std keep compiling unchanged.
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};
}
