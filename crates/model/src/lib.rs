//! `psb-model` — concurrency shims with a built-in model checker.
//!
//! Concurrent code in this workspace (the sweep worker pool, the shared
//! trace cache) imports its synchronization primitives from this crate
//! instead of `std::sync`:
//!
//! ```
//! use psb_model::sync::atomic::{AtomicUsize, Ordering};
//! use psb_model::sync::{Mutex, OnceLock};
//! use psb_model::thread;
//! ```
//!
//! In a **normal build** every one of those names is a transparent
//! re-export of the `std` type: zero wrappers, zero overhead, identical
//! semantics.
//!
//! Under **`--cfg psb_model`** (set by `cargo xtask model`) the same
//! names resolve to modeled primitives that route every synchronization
//! point — atomic access, mutex acquire/release, channel send/receive,
//! `OnceLock` initialization, thread spawn/join — through a controlled
//! scheduler ([`sched`]). The scheduler runs a test body thousands of
//! times, each time forcing a different thread interleaving:
//!
//! * **DFS with a bounded preemption budget** — systematically explores
//!   every schedule that preempts a running thread at most N times
//!   (N = 2 by default, the CHESS heuristic: almost all real
//!   concurrency bugs need very few preemptions).
//! * **Seeded random walk** — after the DFS phase, a configurable
//!   number of uniformly random schedules driven by a deterministic
//!   SplitMix64 stream, to sample beyond the preemption bound.
//!
//! Deadlocks (including lost wakeups — a sleeper nobody will ever wake
//! is indistinguishable from deadlock under exhaustive scheduling),
//! livelocks (an operation budget per execution) and panics escaping a
//! modeled thread are all reported as violations, together with a
//! **replayable schedule string**: re-run the same body under
//! [`sched::replay`] (or with `PSB_MODEL_REPLAY=<schedule>` in the
//! environment) to deterministically reproduce the failing
//! interleaving.
//!
//! Only one model exploration may run at a time per process; the model
//! test suites run with `--test-threads=1` (enforced by
//! `cargo xtask model`).
//!
//! [`keyed::KeyedOnce`] — the keyed exactly-once initialization map
//! backing the workloads trace cache — lives here too, built on the
//! shims, so the exact code that runs in production is the code the
//! model checker explores.

#![warn(missing_docs)]
// The scheduler needs `UnsafeCell` + a scoped-spawn lifetime transmute
// (sound for the same reason `std::thread::scope` is: every spawned
// thread is joined before the borrowed frame dies). Normal builds
// compile none of it.
#![cfg_attr(not(psb_model), forbid(unsafe_code))]

/// Keyed exactly-once initialization (the trace-cache backing store).
pub mod keyed;
/// The controlled scheduler: exploration, replay, violation reporting.
#[cfg(psb_model)]
pub mod sched;
/// `std::sync` shims: `Mutex`, `OnceLock`, atomics, mpsc channels.
pub mod sync;
/// `std::thread` shims: spawn/join, scoped threads, parallelism probe.
pub mod thread;
