//! Quickstart: simulate one benchmark with and without
//! Predictor-Directed Stream Buffers and report the speedup.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark]
//! ```
//!
//! `benchmark` is one of `health`, `burg`, `deltablue`, `gs`, `sis`,
//! `turb3d` (default `deltablue`).

use psb::sim::{f2, pct, MachineConfig, PrefetcherKind, Simulation, Table};
use psb::workloads::Benchmark;

fn main() {
    let bench: Benchmark =
        std::env::args().nth(1).unwrap_or_else(|| "deltablue".to_owned()).parse().unwrap_or_else(
            |e| {
                eprintln!("{e}");
                std::process::exit(2);
            },
        );

    println!("benchmark: {bench} — {}", bench.description());
    println!("generating trace...");
    let trace = bench.trace(1);
    println!("{} dynamic instructions\n", trace.len());

    let base_cfg = MachineConfig::baseline();
    let psb_cfg = base_cfg.with_prefetcher(PrefetcherKind::PsbConfPriority);

    println!("simulating baseline (no prefetching)...");
    let base = Simulation::new(base_cfg, trace.clone(), u64::MAX).run();
    println!("simulating PSB (ConfAlloc-Priority)...\n");
    let psb = Simulation::new(psb_cfg, trace, u64::MAX).run();

    let mut t = Table::new(vec!["metric".into(), "base".into(), "psb".into()]);
    t.row(vec!["IPC".into(), f2(base.ipc()), f2(psb.ipc())]);
    t.row(vec![
        "L1D miss rate".into(),
        pct(base.l1d_miss_rate() * 100.0),
        pct(psb.l1d_miss_rate() * 100.0),
    ]);
    t.row(vec![
        "avg load latency (cy)".into(),
        f2(base.avg_load_latency()),
        f2(psb.avg_load_latency()),
    ]);
    t.row(vec![
        "L1-L2 bus busy".into(),
        pct(base.l1_l2_bus_percent()),
        pct(psb.l1_l2_bus_percent()),
    ]);
    t.row(vec!["prefetch accuracy".into(), "-".into(), pct(psb.prefetch_accuracy() * 100.0)]);
    print!("{t}");
    println!("\nspeedup over base: {}", pct(psb.speedup_percent_over(&base)));
}
