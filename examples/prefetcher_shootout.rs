//! Run every engine in the psb-core registry across the whole benchmark
//! suite and print a Figure-5-style comparison — the paper's six
//! configurations beside the historical baselines and the modern
//! competitors (Pangloss, DSPatch).
//!
//! ```sh
//! cargo run --release --example prefetcher_shootout [scale]
//! ```
//!
//! `scale` multiplies trace length (default 1 ≈ 300k instructions per
//! benchmark; the bench harness uses 2). All cells run concurrently on
//! the sweep work queue (`psb::sim::run_sweep`), sharing one generated
//! trace per benchmark; the printed table is identical to a serial run.

use psb::sim::{run_sweep_with, shootout_cells, PrefetcherKind, Table};
use psb::workloads::Benchmark;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);

    let mut headers = vec!["benchmark".into()];
    headers.extend(PrefetcherKind::ALL.iter().skip(1).map(|k| k.label().to_owned()));
    let mut table = Table::new(headers);

    let cells = shootout_cells(&Benchmark::ALL, scale);
    let outcomes = run_sweep_with(&cells, 0, None, |p| {
        eprintln!("[{}/{}] {}/{}", p.done, p.total, p.cell.bench.name(), p.cell.label());
    });

    // Registry row 0 is the no-prefetch baseline each other cell compares to.
    let per_row = PrefetcherKind::ALL.len();
    for (bench, row) in Benchmark::ALL.iter().zip(outcomes.chunks(per_row)) {
        let base = &row[0].stats;
        let mut cells = vec![bench.name().to_owned()];
        for out in &row[1..] {
            cells.push(format!("{:+.1}%", out.stats.speedup_percent_over(base)));
        }
        table.row(cells);
    }
    println!("\npercent speedup over the no-prefetch baseline (registry shootout):\n");
    print!("{table}");
}
