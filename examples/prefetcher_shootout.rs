//! Run the paper's six machine configurations across the whole benchmark
//! suite and print a Figure-5-style comparison.
//!
//! ```sh
//! cargo run --release --example prefetcher_shootout [scale]
//! ```
//!
//! `scale` multiplies trace length (default 1 ≈ 300k instructions per
//! benchmark; the bench harness uses 2).

use psb::sim::{run_paper_row, PrefetcherKind, Table};
use psb::workloads::Benchmark;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);

    let mut headers = vec!["benchmark".into()];
    headers.extend(PrefetcherKind::PAPER.iter().skip(1).map(|k| k.label().to_owned()));
    let mut table = Table::new(headers);

    for bench in Benchmark::ALL {
        eprintln!("running {bench} (6 configurations)...");
        let row = run_paper_row(bench, scale);
        let base = &row[0].1;
        let mut cells = vec![bench.name().to_owned()];
        for (_, stats) in &row[1..] {
            cells.push(format!("{:+.1}%", stats.speedup_percent_over(base)));
        }
        table.row(cells);
    }
    println!("\npercent speedup over the no-prefetch baseline (Figure 5):\n");
    print!("{table}");
}
