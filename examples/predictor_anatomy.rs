//! Peek inside the Stride-Filtered Markov predictor: train it on two
//! kinds of miss streams and watch which stage captures each.
//!
//! ```sh
//! cargo run --release --example predictor_anatomy
//! ```

use psb::common::Addr;
use psb::core::{SfmPredictor, StreamPredictor, StreamState};

fn main() {
    let mut sfm = SfmPredictor::paper_baseline();

    // 1. A strided load: filtered by the stride stage, never reaches
    //    the Markov table.
    let strided_pc = Addr::new(0x1000);
    for i in 0..6u64 {
        sfm.train(strided_pc, Addr::new(0x10_0000 + 0x80 * i));
    }
    println!("after training a 128-byte strided load:");
    println!("  markov table updates: {}", sfm.markov_table().updates());
    let info = sfm.alloc_info(strided_pc, Addr::new(0)).unwrap();
    println!("  stride = {} bytes, confidence = {}\n", info.stride, info.confidence);

    // 2. A pointer chase: strides never repeat, so every transition is
    //    recorded in the Markov table.
    let chase_pc = Addr::new(0x2000);
    let chain = [0x20_0000u64, 0x22_a040, 0x21_7080, 0x23_30c0, 0x22_1100];
    for _ in 0..3 {
        for &a in &chain {
            sfm.train(chase_pc, Addr::new(a));
        }
    }
    println!("after training a 5-node pointer chase (3 laps):");
    println!("  markov table updates: {}", sfm.markov_table().updates());
    let info = sfm.alloc_info(chase_pc, Addr::new(0)).unwrap();
    println!("  confidence = {} (predictable via Markov)\n", info.confidence);

    // 3. Follow the stream the way a stream buffer would: one prediction
    //    per cycle, advancing the per-stream state, tables untouched.
    let mut state = StreamState::new(chase_pc, Addr::new(chain[0]), info.stride);
    println!("stream buffer walking the chain from {:#x}:", chain[0]);
    for step in 1..=4 {
        let next = sfm.predict(&mut state).expect("SFM always predicts");
        println!("  step {step}: prefetch {next}");
    }

    // 4. The Figure-4 measurement: how many bits each Markov delta needs.
    let hist = sfm.markov_table().delta_width_histogram();
    println!("\nMarkov delta widths observed (CDF):");
    for bits in [4usize, 8, 12, 16, 20] {
        println!("  <= {bits:2} bits: {:5.1}%", hist.cdf(bits) * 100.0);
    }
}
