//! Extend the library: plug your own address predictor into the
//! predictor-directed stream buffers.
//!
//! The paper's key observation is that "any address predictor can be used
//! to guide the predicted prefetch stream". This example demonstrates
//! exactly that extension point: a toy *region-rounding* predictor —
//! strides within an aligned 8 KB region, wrapping to the region start —
//! implemented outside the library, dropped into the same
//! [`StreamEngine`] the paper's SFM uses, and simulated against a
//! matching workload.
//!
//! ```sh
//! cargo run --release --example custom_predictor
//! ```

use psb::common::Addr;
use psb::core::{
    AllocInfo, PsbPrefetcher, SbConfig, StreamEngine, StreamPredictor, StreamState, StrideTable,
};
use psb::sim::{f2, MachineConfig, PrefetcherKind, Simulation, Table};
use psb::workloads::TraceBuilder;

/// A predictor for ring-buffer access patterns: loads stride through an
/// aligned region and wrap to its base — think circular queues or
/// blocked DSP buffers. A plain stride predictor derails at every wrap;
/// this one predicts it.
struct RingPredictor {
    table: StrideTable,
    region: u64,
}

impl RingPredictor {
    fn new(region: u64) -> Self {
        assert!(region.is_power_of_two());
        RingPredictor { table: StrideTable::paper_baseline(), region }
    }
}

impl StreamPredictor for RingPredictor {
    fn train(&mut self, pc: Addr, addr: Addr) {
        let out = self.table.train(pc, addr);
        if !out.cold {
            // Count a wrap-adjusted prediction as correct too.
            let correct = out.stride_correct
                || out.prev_addr.is_some_and(|p| {
                    self.table
                        .info(pc, addr)
                        .is_some_and(|i| wrap_next(p, i.stride, self.region) == addr)
                });
            self.table.confirm(pc, correct);
        }
    }

    fn alloc_info(&self, pc: Addr, addr: Addr) -> Option<AllocInfo> {
        self.table.info(pc, addr).map(|i| AllocInfo {
            stride: i.stride,
            confidence: i.confidence,
            two_miss_ok: i.predicted_streak >= 2,
            history: 0,
        })
    }

    fn predict(&self, state: &mut StreamState) -> Option<Addr> {
        let next = wrap_next(state.last_addr, state.stride, self.region);
        state.history = state.last_addr.raw();
        state.last_addr = next;
        Some(next)
    }
}

/// Advances by `stride` but wraps within the aligned `region`.
fn wrap_next(addr: Addr, stride: i64, region: u64) -> Addr {
    let base = addr.raw() & !(region - 1);
    Addr::new(base + (addr.raw().wrapping_add(stride as u64)) % region)
}

/// A workload of eight 8 KB ring buffers (64 KB total, 2x the L1),
/// each drained by its own load site with a 1088-byte step that wraps
/// every ~7 visits (one stream buffer per ring). A plain stride predictor derails at every wrap; the
/// ring predictor never does.
fn ring_workload(iters: usize) -> Vec<psb::cpu::DynInst> {
    const LOOP: Addr = Addr::new(0x40_0000);
    const RING: u64 = 8192;
    const STEP: u64 = 1088;
    const RINGS: usize = 8;
    let mut b = TraceBuilder::new(LOOP);
    let mut offsets = [0u64; RINGS];
    for it in 0..iters {
        b.expect_pc(LOOP);
        for (r, off) in offsets.iter_mut().enumerate() {
            // One load site per ring; dependence-chained per ring.
            let base = 0x1000_0000 + (r as u64) * 0x10_0000;
            b.load(1, Some(1), Addr::new(base + *off));
            b.alu(2, Some(1), Some(2));
            *off = (*off + STEP) % RING;
        }
        b.alu(3, Some(2), None);
        b.cond(Some(3), it + 1 < iters, LOOP);
    }
    b.finish()
}

fn main() {
    let trace = ring_workload(2000);
    println!("ring-buffer workload: {} instructions\n", trace.len());

    let base = Simulation::new(MachineConfig::baseline(), trace.clone(), u64::MAX).run();
    let stride = Simulation::new(
        MachineConfig::baseline().with_prefetcher(PrefetcherKind::PcStride),
        trace.clone(),
        u64::MAX,
    )
    .run();
    let sfm = Simulation::new(MachineConfig::baseline(), trace.clone(), u64::MAX)
        .with_engine(Box::new(PsbPrefetcher::psb(SbConfig::psb_conf_priority())))
        .run();
    let ring = Simulation::new(MachineConfig::baseline(), trace, u64::MAX)
        .with_engine(Box::new(StreamEngine::new(
            SbConfig::psb_conf_priority(),
            RingPredictor::new(8192),
            "ring-psb".to_owned(),
        )))
        .run();

    let mut t = Table::new(vec![
        "engine".into(),
        "IPC".into(),
        "speedup".into(),
        "accuracy".into(),
        "issued".into(),
        "alloc".into(),
    ]);
    for (name, s) in
        [("base", &base), ("pc-stride", &stride), ("psb (sfm)", &sfm), ("psb (custom ring)", &ring)]
    {
        t.row(vec![
            name.into(),
            f2(s.ipc()),
            format!("{:+.1}%", s.speedup_percent_over(&base)),
            format!("{:.1}%", s.prefetch_accuracy() * 100.0),
            format!("{}", s.prefetch.issued),
            format!("{}", s.prefetch.allocations),
        ]);
    }
    print!("{t}");
    println!("\nThe custom predictor implements one trait (StreamPredictor) and");
    println!("reuses every other mechanism of the paper: buffers, confidence");
    println!("allocation, priority scheduling, bus gating.");
}
