//! Build a custom workload with `TraceBuilder` and watch the PSB follow a
//! linked list that defeats stride prefetching.
//!
//! This is the paper's motivating scenario in miniature: a recursive data
//! structure whose traversal order is fixed but whose address deltas are
//! irregular. The two-delta stride predictor can't follow it; the
//! Stride-Filtered Markov predictor learns the chain after one lap and
//! the stream buffers then run ahead of the program.
//!
//! ```sh
//! cargo run --release --example pointer_chase
//! ```

use psb::common::{Addr, SplitMix64};
use psb::sim::{f2, MachineConfig, PrefetcherKind, Simulation, Table};
use psb::workloads::TraceBuilder;

/// One loop iteration visits a node: `data = node.payload; node =
/// node.next; work(data)` — the chase load serializes the iterations.
fn linked_list_walk(nodes: usize, laps: usize) -> Vec<psb::cpu::DynInst> {
    const LOOP: Addr = Addr::new(0x40_0000);
    // Nodes are 64 B, placed in shuffled order inside a 128 KB arena —
    // bigger than the 32 KB L1, far smaller than the 1 MB L2.
    let mut order: Vec<u64> = (0..nodes as u64).collect();
    SplitMix64::new(7).shuffle(&mut order);

    let mut b = TraceBuilder::new(LOOP);
    for _ in 0..laps {
        for (i, &n) in order.iter().enumerate() {
            b.expect_pc(LOOP);
            let node = Addr::new(0x1000_0000 + n * 64);
            b.load(2, Some(1), node.offset(8)); // payload
            b.load(1, Some(1), node); //          next pointer (serializes)
            b.alu(3, Some(2), Some(3)); //        work
            b.alu(4, Some(3), None);
            b.cond(Some(4), i + 1 < order.len(), LOOP);
        }
        b.jump(LOOP);
    }
    b.finish()
}

fn main() {
    let trace = linked_list_walk(1500, 8);
    println!("linked-list walk: 1500 nodes x 8 laps, {} instructions\n", trace.len());

    let mut table = Table::new(vec![
        "prefetcher".into(),
        "IPC".into(),
        "speedup".into(),
        "SB hit rate".into(),
        "accuracy".into(),
        "L1-L2 bus".into(),
        "prefetches".into(),
    ]);
    let mut base_ipc = None;
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::Sequential,
        PrefetcherKind::PcStride,
        PrefetcherKind::PsbConfPriority,
    ] {
        let cfg = MachineConfig::baseline().with_prefetcher(kind);
        let s = Simulation::new(cfg, trace.clone(), u64::MAX).run();
        let ipc = s.ipc();
        let base = *base_ipc.get_or_insert(ipc);
        table.row(vec![
            kind.label().into(),
            f2(ipc),
            format!("{:+.1}%", (ipc / base - 1.0) * 100.0),
            format!("{:.1}%", s.prefetch.hit_rate() * 100.0),
            format!("{:.1}%", s.prefetch_accuracy() * 100.0),
            format!("{:.1}%", s.l1_l2_bus_percent()),
            format!("{}", s.prefetch.issued),
        ]);
    }
    print!("{table}");
    println!("\nOnly the Markov-directed stream buffer actually follows the");
    println!("pointer chain (high SB hit rate and accuracy). The sequential");
    println!("buffer sometimes gains too — but by blindly warming the L2 at");
    println!("a huge cost in useless prefetch traffic, which evaporates as");
    println!("soon as other streams compete for the bus.");
}
